package workload

import (
	"testing"

	"viewmat/internal/costmodel"
)

func TestGenerateCounts(t *testing.T) {
	p := costmodel.Default()
	p.K, p.Q, p.L = 40, 20, 5
	ops, err := Generate(Spec{Params: p, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	u, q := Counts(ops)
	if u != 40 || q != 20 {
		t.Errorf("counts = %d updates, %d queries; want 40, 20", u, q)
	}
	for _, op := range ops {
		if op.Kind == OpUpdate {
			if len(op.Keys) != 5 || len(op.NewPayload) != 5 {
				t.Fatalf("update txn with %d keys, want 5", len(op.Keys))
			}
			for _, k := range op.Keys {
				if k < 0 || k >= int64(p.N) {
					t.Fatalf("key %d out of domain", k)
				}
			}
		}
	}
}

func TestGenerateInterleavesEvenly(t *testing.T) {
	p := costmodel.Default()
	p.K, p.Q, p.L = 100, 100, 2
	ops, _ := Generate(Spec{Params: p, Seed: 2})
	// With k = q, no more than 2 consecutive operations of one kind.
	run, prev := 0, OpKind(-1)
	for _, op := range ops {
		if op.Kind == prev {
			run++
			if run > 2 {
				t.Fatal("operations not interleaved")
			}
		} else {
			run = 1
			prev = op.Kind
		}
	}
}

func TestGenerateQueryRanges(t *testing.T) {
	p := costmodel.Default()
	p.K, p.Q = 10, 50
	ops, _ := Generate(Spec{Params: p, Seed: 3})
	viewTuples := int64(p.F * p.N)
	span := int64(p.FV * float64(viewTuples))
	for _, op := range ops {
		if op.Kind != OpQuery {
			continue
		}
		if op.QueryLo < 0 || op.QueryHi >= viewTuples {
			t.Fatalf("query [%d,%d] outside view domain [0,%d)", op.QueryLo, op.QueryHi, viewTuples)
		}
		if got := op.QueryHi - op.QueryLo + 1; got != span {
			t.Fatalf("query span = %d, want %d", got, span)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := costmodel.Default()
	p.K, p.Q, p.L = 10, 10, 3
	a, _ := Generate(Spec{Params: p, Seed: 42})
	b, _ := Generate(Spec{Params: p, Seed: 42})
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].QueryLo != b[i].QueryLo {
			t.Fatalf("op %d differs between same-seed runs", i)
		}
		for j := range a[i].Keys {
			if a[i].Keys[j] != b[i].Keys[j] {
				t.Fatalf("op %d key %d differs", i, j)
			}
		}
	}
	c, _ := Generate(Spec{Params: p, Seed: 43})
	same := true
	for i := range a {
		if a[i].Kind == OpUpdate && c[i].Kind == OpUpdate && len(a[i].Keys) > 0 && a[i].Keys[0] != c[i].Keys[0] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical key streams")
	}
}

func TestGenerateRejectsInvalidParams(t *testing.T) {
	p := costmodel.Default()
	p.F = 0
	if _, err := Generate(Spec{Params: p}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestTinyViewAndSpanClamped(t *testing.T) {
	p := costmodel.Default()
	p.N, p.F, p.FV = 100, 0.01, 0.001 // view of 1 tuple, span < 1
	p.K, p.Q, p.L = 2, 2, 1
	ops, err := Generate(Spec{Params: p, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if op.Kind == OpQuery && (op.QueryLo != 0 || op.QueryHi != 0) {
			t.Errorf("degenerate query range [%d,%d]", op.QueryLo, op.QueryHi)
		}
	}
}

func TestSkewConcentratesUpdates(t *testing.T) {
	p := costmodel.Default()
	p.N = 1000
	p.K, p.Q, p.L = 100, 10, 10
	uniform, err := Generate(Spec{Params: p, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := Generate(Spec{Params: p, Seed: 9, Skew: 2.0})
	if err != nil {
		t.Fatal(err)
	}
	distinct := func(ops []Operation) int {
		seen := map[int64]bool{}
		for _, op := range ops {
			for _, k := range op.Keys {
				if k < 0 || k >= 1000 {
					t.Fatalf("key %d out of domain", k)
				}
				seen[k] = true
			}
		}
		return len(seen)
	}
	u, s := distinct(uniform), distinct(skewed)
	if s >= u/2 {
		t.Errorf("skewed workload touched %d distinct keys vs uniform %d; expected strong concentration", s, u)
	}
}

func TestSkewDeterministic(t *testing.T) {
	p := costmodel.Default()
	p.N, p.K, p.Q, p.L = 500, 10, 5, 4
	a, _ := Generate(Spec{Params: p, Seed: 3, Skew: 1.5})
	b, _ := Generate(Spec{Params: p, Seed: 3, Skew: 1.5})
	for i := range a {
		for j := range a[i].Keys {
			if a[i].Keys[j] != b[i].Keys[j] {
				t.Fatal("skewed generation not deterministic")
			}
		}
	}
}
