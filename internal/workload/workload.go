// Package workload realizes the paper's parametric workload (§3.1) as
// concrete operation streams: k update transactions of l tuple
// modifications each, interleaved evenly with q view queries that each
// retrieve a fraction fv of the view. Generation is deterministic per
// seed.
//
// The data layout matches the model's assumptions exactly:
//
//   - R (and R1) holds N tuples with unique clustering keys 0..N−1;
//     the view predicate is key < f·N, so the selectivity is exactly f
//     and the predicate field is the clustering field.
//   - R2 holds fR2·N tuples keyed 0..fR2·N−1 on the join column, and
//     every R1 tuple carries a join value in that range, so each
//     restricted R1 tuple joins exactly one R2 tuple.
//   - An update modifies a tuple's payload (not its key), so it is a
//     same-key delete+insert — the shape §2.2.2's three-I/O walkthrough
//     prices.
//   - A query retrieves a contiguous key range covering a fraction fv
//     of the view.
package workload

import (
	"fmt"
	"math/rand"

	"viewmat/internal/costmodel"
)

// OpKind distinguishes operations.
type OpKind int

const (
	// OpUpdate is one update transaction (l tuple modifications).
	OpUpdate OpKind = iota
	// OpQuery is one view query.
	OpQuery
)

// Operation is one workload step.
type Operation struct {
	Kind OpKind
	// Keys lists the clustering keys the transaction updates (length l).
	Keys []int64
	// NewPayload carries one fresh payload value per updated key.
	NewPayload []int64
	// QueryLo/QueryHi bound the query's key range (inclusive).
	QueryLo, QueryHi int64
}

// Spec configures generation.
type Spec struct {
	Params costmodel.Params
	Seed   int64
	// Skew selects the update-key distribution: 0 (default) is the
	// paper's uniform assumption; values > 1 draw keys from a Zipf
	// distribution with that s parameter, concentrating updates on hot
	// keys. Skew is an ablation knob: hot keys saturate the Yao
	// function sooner, which is exactly the regime where deferred
	// refresh's batching pays (§4).
	Skew float64
}

// Generate produces the interleaved operation stream: k update
// transactions and q queries, spread evenly (u = k·l/q updated tuples
// between consecutive queries on average, as the model assumes).
func Generate(spec Spec) ([]Operation, error) {
	p := spec.Params
	if err := p.Validate(); err != nil {
		return nil, err
	}
	k := int(p.K + 0.5)
	q := int(p.Q + 0.5)
	l := int(p.L + 0.5)
	if q == 0 {
		return nil, fmt.Errorf("workload: q must be ≥ 1")
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	n := int64(p.N)
	var zipf *rand.Zipf
	if spec.Skew > 1 {
		zipf = rand.NewZipf(rng, spec.Skew, 1, uint64(n-1))
		if zipf == nil {
			return nil, fmt.Errorf("workload: invalid skew %v", spec.Skew)
		}
	}
	drawKey := func() int64 {
		if zipf != nil {
			// Scatter the Zipf ranks over the key space so the hot
			// set is not all inside (or outside) the view predicate.
			return int64((zipf.Uint64() * 2654435761) % uint64(n))
		}
		return rng.Int63n(n)
	}
	viewTuples := int64(p.F * p.N)
	if viewTuples < 1 {
		viewTuples = 1
	}
	span := int64(p.FV * float64(viewTuples))
	if span < 1 {
		span = 1
	}

	ops := make([]Operation, 0, k+q)
	// Interleave by error diffusion so updates and queries spread
	// evenly whatever the ratio.
	uAcc, qAcc := 0, 0
	for len(ops) < k+q {
		// Choose whichever stream is furthest behind its quota.
		updBehind := float64(uAcc+1)/float64(k+1) <= float64(qAcc+1)/float64(q+1)
		if (updBehind && uAcc < k) || qAcc >= q {
			keys := make([]int64, l)
			payload := make([]int64, l)
			for i := range keys {
				keys[i] = drawKey()
				payload[i] = rng.Int63()>>1 | 1
			}
			ops = append(ops, Operation{Kind: OpUpdate, Keys: keys, NewPayload: payload})
			uAcc++
		} else {
			lo := int64(0)
			if viewTuples > span {
				lo = rng.Int63n(viewTuples - span + 1)
			}
			ops = append(ops, Operation{Kind: OpQuery, QueryLo: lo, QueryHi: lo + span - 1})
			qAcc++
		}
	}
	return ops, nil
}

// Counts reports the number of update and query operations in a stream.
func Counts(ops []Operation) (updates, queries int) {
	for _, op := range ops {
		if op.Kind == OpUpdate {
			updates++
		} else {
			queries++
		}
	}
	return
}

// Phase is one segment of a phase-shifted workload: a full Spec-shaped
// parameter set active for its own k+q operations. A mid-script shift
// between phases with different k/q mixes is the scenario an adaptive
// strategy advisor has to survive: the measured parameters cross the
// model's strategy boundaries and the right choice changes underneath
// a running system.
type Phase struct {
	Params costmodel.Params
	// Skew overrides the stream's update-key skew for this phase
	// (0 = uniform).
	Skew float64
}

// GeneratePhased concatenates one generated stream per phase, all over
// the same key space (every phase's N must agree — the data does not
// change shape mid-run, only the operation mix does). It returns the
// combined stream and the operation index at which each phase begins.
func GeneratePhased(seed int64, phases ...Phase) ([]Operation, []int, error) {
	if len(phases) == 0 {
		return nil, nil, fmt.Errorf("workload: no phases")
	}
	n := phases[0].Params.N
	var ops []Operation
	starts := make([]int, 0, len(phases))
	for i, ph := range phases {
		if ph.Params.N != n {
			return nil, nil, fmt.Errorf("workload: phase %d changes N (%v → %v); phases share one key space", i, n, ph.Params.N)
		}
		starts = append(starts, len(ops))
		// Distinct per-phase seeds keep the phases independent while
		// the whole run stays deterministic in the top-level seed.
		seg, err := Generate(Spec{Params: ph.Params, Seed: seed + int64(i)*1_000_003, Skew: ph.Skew})
		if err != nil {
			return nil, nil, fmt.Errorf("workload: phase %d: %w", i, err)
		}
		ops = append(ops, seg...)
	}
	return ops, starts, nil
}
