package workload

import (
	"math"
	"testing"
)

func TestKeyStreamDeterministic(t *testing.T) {
	a := KeyStream(1000, 500, 1.5, 42)
	b := KeyStream(1000, 500, 1.5, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := KeyStream(1000, 500, 1.5, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
	for i, k := range a {
		if k < 0 || k >= 500 {
			t.Fatalf("key %d at %d outside key space", k, i)
		}
	}
}

// A chi-square-style check pinning the skew knob: against the uniform
// expectation, a uniform stream's statistic stays near its degrees of
// freedom while a zipfian stream's explodes; and the top-1% hot mass
// rises monotonically with the exponent.
func TestKeyStreamSkew(t *testing.T) {
	const n, space = 20000, 1000

	chiSq := func(keys []int64) float64 {
		counts := KeyCounts(keys)
		expected := float64(n) / float64(space)
		s := 0.0
		for k := int64(0); k < space; k++ {
			d := float64(counts[k]) - expected
			s += d * d / expected
		}
		return s
	}

	// For 999 degrees of freedom the 99.9th percentile is ~1150; allow
	// wide slack on the uniform side and demand an order of magnitude
	// more on the skewed side.
	uni := chiSq(KeyStream(n, space, 0, 7))
	if uni > 1300 {
		t.Fatalf("uniform stream chi-square %v implausibly high", uni)
	}
	skewed := chiSq(KeyStream(n, space, 1.5, 7))
	if skewed < 10*1300 {
		t.Fatalf("skewed stream chi-square %v too close to uniform", skewed)
	}

	topK := space / 100 // top 1% of keys
	prev := -1.0
	for _, s := range []float64{0, 1.2, 1.5, 2.0} {
		m := HotMass(KeyStream(n, space, s, 7), topK)
		if m <= prev {
			t.Fatalf("hot mass not increasing with skew: %v at s=%v (prev %v)", m, s, prev)
		}
		prev = m
	}
	// Pin the regimes: uniform top-1% mass ≈ 1%-ish; zipf s=1.5 carries
	// the bulk of the stream on its hot set.
	if u := HotMass(KeyStream(n, space, 0, 7), topK); u > 0.05 {
		t.Fatalf("uniform hot mass %v too concentrated", u)
	}
	if z := HotMass(KeyStream(n, space, 1.5, 7), topK); z < 0.5 {
		t.Fatalf("zipf 1.5 hot mass %v too flat", z)
	}
}

func TestSuggestThreshold(t *testing.T) {
	skewed := KeyStream(20000, 1000, 1.5, 11)
	th := SuggestThreshold(skewed, 0.5)
	if th <= 0 || th > 1 {
		t.Fatalf("threshold %v outside (0, 1]", th)
	}
	// The admitted keys (share ≥ threshold) must carry at least the
	// requested mass.
	counts := KeyCounts(skewed)
	total := float64(len(skewed))
	mass := 0.0
	for _, c := range counts {
		if float64(c)/total >= th {
			mass += float64(c) / total
		}
	}
	if mass < 0.5 {
		t.Fatalf("keys over threshold carry %v < 0.5 of the stream", mass)
	}

	// Uniform streams suggest a threshold no key reaches only if the
	// requested share is small; at any rate it must stay in range.
	uni := SuggestThreshold(KeyStream(20000, 1000, 0, 11), 0.5)
	if uni <= 0 || uni > 1 {
		t.Fatalf("uniform threshold %v outside (0, 1]", uni)
	}
	if math.IsNaN(uni) || math.IsNaN(th) {
		t.Fatal("NaN threshold")
	}
	if empty := SuggestThreshold(nil, 0.5); empty != 1 {
		t.Fatalf("empty stream threshold = %v, want 1", empty)
	}
}
