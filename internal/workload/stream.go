package workload

import (
	"math/rand"
	"sort"
)

// Skewed update-key streams for the heavy-light ablation: a raw key
// sequence (no transaction framing), its per-key frequencies, and a
// threshold suggestion for core.EnableHeavyLight derived from the
// observed hot-key mass. Generation is deterministic per seed.

// KeyStream draws n update keys over [0, keySpace). skew ≤ 1 draws
// uniformly; skew > 1 draws Zipf ranks with that s parameter,
// scattered over the key space exactly as Generate does.
func KeyStream(n int, keySpace int64, skew float64, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	var zipf *rand.Zipf
	if skew > 1 {
		zipf = rand.NewZipf(rng, skew, 1, uint64(keySpace-1))
	}
	out := make([]int64, n)
	for i := range out {
		if zipf != nil {
			out[i] = int64((zipf.Uint64() * 2654435761) % uint64(keySpace))
		} else {
			out[i] = rng.Int63n(keySpace)
		}
	}
	return out
}

// KeyCounts tallies a stream's per-key frequencies.
func KeyCounts(keys []int64) map[int64]int {
	c := make(map[int64]int)
	for _, k := range keys {
		c[k]++
	}
	return c
}

// HotMass returns the fraction of the stream carried by the topK most
// frequent keys — the quantity a zipfian stream concentrates and a
// uniform stream spreads thin.
func HotMass(keys []int64, topK int) float64 {
	if len(keys) == 0 || topK <= 0 {
		return 0
	}
	counts := KeyCounts(keys)
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	if topK > len(freqs) {
		topK = len(freqs)
	}
	hot := 0
	for _, c := range freqs[:topK] {
		hot += c
	}
	return float64(hot) / float64(len(keys))
}

// SuggestThreshold derives a per-key frequency threshold for
// core.EnableHeavyLight from a sample stream: the smallest per-key
// share that still admits the keys carrying hotShare of the sample's
// mass. Under heavy skew only the head keys clear it; a uniform
// sample yields a threshold ordinary keys reach (every key is equally
// "hot"), so shrink hotShare — or skip heavy-light entirely — when
// the sample shows no skew.
func SuggestThreshold(keys []int64, hotShare float64) float64 {
	if len(keys) == 0 {
		return 1
	}
	counts := KeyCounts(keys)
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	total := float64(len(keys))
	cum := 0
	for _, c := range freqs {
		cum += c
		if float64(cum) >= hotShare*total {
			return float64(c) / total
		}
	}
	return float64(freqs[len(freqs)-1]) / total
}
