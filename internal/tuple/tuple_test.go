package tuple

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSchemaBasics(t *testing.T) {
	s := NewSchema(Col("id", Int), Col("name", String), Col("salary", Float))
	if got := s.ColIndex("name"); got != 1 {
		t.Errorf("ColIndex(name) = %d, want 1", got)
	}
	if got := s.ColIndex("missing"); got != -1 {
		t.Errorf("ColIndex(missing) = %d, want -1", got)
	}
	if got := s.String(); got != "(id INT, name STRING, salary FLOAT)" {
		t.Errorf("String() = %q", got)
	}
	p := s.Project([]int{2, 0})
	if len(p.Cols) != 2 || p.Cols[0].Name != "salary" || p.Cols[1].Name != "id" {
		t.Errorf("Project gave %v", p)
	}
}

func TestSchemaMustColIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown column")
		}
	}()
	NewSchema(Col("a", Int)).MustColIndex("b")
}

func TestSchemaValidate(t *testing.T) {
	s := NewSchema(Col("a", Int), Col("b", String))
	if err := s.Validate([]Value{I(1), S("x")}); err != nil {
		t.Errorf("valid tuple rejected: %v", err)
	}
	if err := s.Validate([]Value{I(1)}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := s.Validate([]Value{S("x"), S("y")}); err == nil {
		t.Error("type mismatch accepted")
	}
}

func TestSchemaConcatRenamesDuplicates(t *testing.T) {
	a := NewSchema(Col("id", Int), Col("dept", Int))
	b := NewSchema(Col("dept", Int), Col("floor", Int))
	j := a.Concat(b, "emp", "dept")
	want := []string{"id", "dept", "dept.dept", "floor"}
	for i, w := range want {
		if j.Cols[i].Name != w {
			t.Errorf("col %d = %q, want %q", i, j.Cols[i].Name, w)
		}
	}
}

func TestValueCompare(t *testing.T) {
	tests := []struct {
		a, b Value
		want int
	}{
		{I(1), I(2), -1},
		{I(2), I(2), 0},
		{I(3), I(2), 1},
		{F(1.5), F(2.5), -1},
		{F(2.5), F(2.5), 0},
		{S("abc"), S("abd"), -1},
		{S("b"), S("a"), 1},
		{I(0), F(0), -1}, // cross-type: order by tag
	}
	for _, tc := range tests {
		if got := Compare(tc.a, tc.b); got != tc.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestValueAsFloat(t *testing.T) {
	if got := I(7).AsFloat(); got != 7 {
		t.Errorf("I(7).AsFloat() = %v", got)
	}
	if got := F(2.5).AsFloat(); got != 2.5 {
		t.Errorf("F(2.5).AsFloat() = %v", got)
	}
	if got := S("x").AsFloat(); !math.IsNaN(got) {
		t.Errorf("S.AsFloat() = %v, want NaN", got)
	}
}

func TestTupleProjectPreservesID(t *testing.T) {
	tp := New(42, I(1), S("x"), F(3.5))
	p := tp.Project([]int{2, 0})
	if p.ID != 42 {
		t.Errorf("projection lost id: %d", p.ID)
	}
	if !Equal(p.Vals[0], F(3.5)) || !Equal(p.Vals[1], I(1)) {
		t.Errorf("projection values wrong: %v", p)
	}
}

func TestTupleJoin(t *testing.T) {
	a := New(1, I(10), S("alice"))
	b := New(2, I(10), S("eng"))
	j := Join(a, b)
	if j.ID != 1 || len(j.Vals) != 4 {
		t.Fatalf("join = %v", j)
	}
	if !Equal(j.Vals[3], S("eng")) {
		t.Errorf("join values wrong: %v", j)
	}
}

func TestValsEqualIgnoresID(t *testing.T) {
	a := New(1, I(5), S("x"))
	b := New(99, I(5), S("x"))
	c := New(1, I(6), S("x"))
	if !ValsEqual(a, b) {
		t.Error("equal-valued tuples with different ids should be ValsEqual")
	}
	if ValsEqual(a, c) {
		t.Error("different-valued tuples should not be ValsEqual")
	}
	if ValsEqual(a, New(1, I(5))) {
		t.Error("different arities should not be ValsEqual")
	}
}

func TestValueKeyDistinguishes(t *testing.T) {
	a := New(1, S("ab"), S("c"))
	b := New(1, S("a"), S("bc"))
	if a.ValueKey() == b.ValueKey() {
		t.Error("ValueKey must not collide across field boundaries")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tp := New(123456789, I(-42), F(3.14159), S("hello, world"), S(""))
	buf := tp.Encode(nil)
	if len(buf) != tp.EncodedSize() {
		t.Errorf("EncodedSize %d != actual %d", tp.EncodedSize(), len(buf))
	}
	got, n, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if n != len(buf) {
		t.Errorf("Decode consumed %d of %d bytes", n, len(buf))
	}
	if got.ID != tp.ID || !ValsEqual(got, tp) {
		t.Errorf("round trip: got %v want %v", got, tp)
	}
}

func TestDecodeErrors(t *testing.T) {
	tp := New(7, I(1), S("abc"))
	buf := tp.Encode(nil)
	for cut := 1; cut < len(buf); cut++ {
		if _, _, err := Decode(buf[:cut]); err == nil {
			t.Errorf("truncation at %d bytes accepted", cut)
		}
	}
	bad := append([]byte(nil), buf...)
	bad[10] = 0xFF // corrupt type tag
	if _, _, err := Decode(bad); err == nil {
		t.Error("unknown type tag accepted")
	}
}

func TestPropertyEncodeDecode(t *testing.T) {
	f := func(id uint64, i int64, fl float64, s string) bool {
		if math.IsNaN(fl) {
			fl = 0
		}
		tp := New(id, I(i), F(fl), S(s))
		got, n, err := Decode(tp.Encode(nil))
		return err == nil && n == tp.EncodedSize() && got.ID == id && ValsEqual(got, tp)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(I(a), I(b)) == -Compare(I(b), I(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyCompareTransitiveStrings(t *testing.T) {
	f := func(a, b, c string) bool {
		x, y, z := S(a), S(b), S(c)
		if Compare(x, y) <= 0 && Compare(y, z) <= 0 {
			return Compare(x, z) <= 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	tp := New(1, I(42), F(3.14), S("some string value"))
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = tp.Encode(buf[:0])
	}
}

func BenchmarkDecode(b *testing.B) {
	tp := New(1, I(42), F(3.14), S("some string value"))
	buf := tp.Encode(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func TestValueAccessors(t *testing.T) {
	if I(7).Int() != 7 || F(2.5).Float() != 2.5 || S("x").Str() != "x" {
		t.Error("typed accessors wrong")
	}
	if I(7).Type() != Int || F(0).Type() != Float || S("").Type() != String {
		t.Error("Type() wrong")
	}
	want := map[string]string{Int.String(): "INT", Float.String(): "FLOAT", String.String(): "STRING", Type(9).String(): "TYPE(9)"}
	for got, w := range want {
		if got != w {
			t.Errorf("Type.String() = %q, want %q", got, w)
		}
	}
}

func TestTupleGetCloneString(t *testing.T) {
	tp := New(3, I(1), S("x"), F(2.5))
	if !Equal(tp.Get(1), S("x")) {
		t.Errorf("Get(1) = %v", tp.Get(1))
	}
	c := tp.Clone()
	c.Vals[0] = I(99)
	if tp.Vals[0].Int() != 1 {
		t.Error("Clone aliases the original")
	}
	if got := tp.String(); got != `#3[1, "x", 2.5]` {
		t.Errorf("Tuple.String() = %q", got)
	}
	if got := F(2.5).String(); got != "2.5" {
		t.Errorf("Value.String() = %q", got)
	}
}
