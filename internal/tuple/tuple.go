// Package tuple defines schemas, typed values, and tuples for the
// viewmat storage engine, together with a compact binary encoding used
// to lay tuples out on simulated disk pages.
//
// Tuples carry a unique, monotonically increasing identifier (the "id"
// field of the hypothetical-relation scheme in Hanson §2.2.1); the
// identifier is assigned by the engine from a logical clock and is what
// lets a deletion in the differential file name exactly the base tuple
// it removes.
package tuple

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// Type enumerates the column types supported by the engine.
type Type uint8

const (
	// Int is a 64-bit signed integer column.
	Int Type = iota
	// Float is a 64-bit IEEE-754 column.
	Float
	// String is a variable-length byte-string column.
	String
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Int:
		return "INT"
	case Float:
		return "FLOAT"
	case String:
		return "STRING"
	default:
		return fmt.Sprintf("TYPE(%d)", uint8(t))
	}
}

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type Type
}

// Schema describes the attributes of a relation or view. The zero value
// is an empty schema.
type Schema struct {
	Cols []Column
}

// NewSchema builds a schema from (name, type) pairs.
func NewSchema(cols ...Column) *Schema {
	return &Schema{Cols: cols}
}

// Col is a convenience constructor for a Column.
func Col(name string, t Type) Column {
	return Column{Name: name, Type: t}
}

// ColIndex returns the position of the named column, or -1 if absent.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// MustColIndex is ColIndex that panics on an unknown column; it is used
// when schemas are constructed programmatically and a miss is a bug.
func (s *Schema) MustColIndex(name string) int {
	i := s.ColIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("tuple: schema has no column %q", name))
	}
	return i
}

// Project returns the schema consisting of the given column positions.
func (s *Schema) Project(idx []int) *Schema {
	out := &Schema{Cols: make([]Column, len(idx))}
	for i, j := range idx {
		out.Cols[i] = s.Cols[j]
	}
	return out
}

// Concat returns the schema of s followed by t, prefixing duplicate
// names the way a natural-join result does.
func (s *Schema) Concat(t *Schema, leftPrefix, rightPrefix string) *Schema {
	seen := map[string]bool{}
	for _, c := range s.Cols {
		seen[c.Name] = true
	}
	out := &Schema{Cols: make([]Column, 0, len(s.Cols)+len(t.Cols))}
	for _, c := range s.Cols {
		out.Cols = append(out.Cols, c)
	}
	for _, c := range t.Cols {
		name := c.Name
		if seen[name] {
			name = rightPrefix + "." + name
		}
		out.Cols = append(out.Cols, Column{Name: name, Type: c.Type})
	}
	_ = leftPrefix
	return out
}

// String renders the schema as "(name TYPE, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Type)
	}
	b.WriteByte(')')
	return b.String()
}

// Validate reports whether vals conforms to the schema.
func (s *Schema) Validate(vals []Value) error {
	if len(vals) != len(s.Cols) {
		return fmt.Errorf("tuple: arity %d does not match schema arity %d", len(vals), len(s.Cols))
	}
	for i, v := range vals {
		if v.Type() != s.Cols[i].Type {
			return fmt.Errorf("tuple: column %q expects %s, got %s", s.Cols[i].Name, s.Cols[i].Type, v.Type())
		}
	}
	return nil
}

// Value is a typed scalar. The zero Value is the integer 0.
type Value struct {
	typ Type
	i   int64
	f   float64
	s   string
}

// I constructs an Int value.
func I(v int64) Value { return Value{typ: Int, i: v} }

// F constructs a Float value.
func F(v float64) Value { return Value{typ: Float, f: v} }

// S constructs a String value.
func S(v string) Value { return Value{typ: String, s: v} }

// Type returns the value's type tag.
func (v Value) Type() Type { return v.typ }

// Int returns the integer payload; callers must know the type.
func (v Value) Int() int64 { return v.i }

// Float returns the float payload.
func (v Value) Float() float64 { return v.f }

// Str returns the string payload.
func (v Value) Str() string { return v.s }

// AsFloat converts numeric values to float64 (used by aggregates).
func (v Value) AsFloat() float64 {
	switch v.typ {
	case Int:
		return float64(v.i)
	case Float:
		return v.f
	default:
		return math.NaN()
	}
}

// Compare orders two values of the same type: -1, 0, or +1. Values of
// different types order by type tag, so heterogenous keys still sort
// deterministically rather than panicking mid-scan.
func Compare(a, b Value) int {
	if a.typ != b.typ {
		if a.typ < b.typ {
			return -1
		}
		return 1
	}
	switch a.typ {
	case Int:
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		}
		return 0
	case Float:
		switch {
		case a.f < b.f:
			return -1
		case a.f > b.f:
			return 1
		}
		return 0
	default:
		return strings.Compare(a.s, b.s)
	}
}

// Equal reports whether two values are identical in type and payload.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.typ {
	case Int:
		return fmt.Sprintf("%d", v.i)
	case Float:
		return fmt.Sprintf("%g", v.f)
	default:
		return fmt.Sprintf("%q", v.s)
	}
}

// Tuple is a row: a unique identifier plus one value per schema column.
// The identifier plays the role of the HR scheme's "id" field — it is
// assigned once at insert time from a monotonic source and never reused,
// so (id, value) uniquely names a version of a row.
type Tuple struct {
	ID   uint64
	Vals []Value
}

// New builds a tuple with the given id and values.
func New(id uint64, vals ...Value) Tuple {
	return Tuple{ID: id, Vals: vals}
}

// Get returns the value at column i.
func (t Tuple) Get(i int) Value { return t.Vals[i] }

// Project returns a new tuple keeping only the given column positions.
// The id is preserved: projection in the differential-update algorithm
// must keep track of which base tuple contributed the row.
func (t Tuple) Project(idx []int) Tuple {
	out := Tuple{ID: t.ID, Vals: make([]Value, len(idx))}
	for i, j := range idx {
		out.Vals[i] = t.Vals[j]
	}
	return out
}

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := Tuple{ID: t.ID, Vals: make([]Value, len(t.Vals))}
	copy(out.Vals, t.Vals)
	return out
}

// Join concatenates two tuples into one (natural-join result row). The
// id of the left tuple is kept; join provenance beyond that is the
// responsibility of the view layer.
func Join(a, b Tuple) Tuple {
	out := Tuple{ID: a.ID, Vals: make([]Value, 0, len(a.Vals)+len(b.Vals))}
	out.Vals = append(out.Vals, a.Vals...)
	out.Vals = append(out.Vals, b.Vals...)
	return out
}

// ValsEqual reports whether two tuples have identical values (ignoring
// ids). This is "duplicate" in the duplicate-count sense of §2.1.
func ValsEqual(a, b Tuple) bool {
	if len(a.Vals) != len(b.Vals) {
		return false
	}
	for i := range a.Vals {
		if !Equal(a.Vals[i], b.Vals[i]) {
			return false
		}
	}
	return true
}

// ValueKey renders the tuple's values as a canonical string key, used
// for duplicate-count bookkeeping and for hashing into Bloom filters.
func (t Tuple) ValueKey() string {
	var b strings.Builder
	for i, v := range t.Vals {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteString(v.String())
	}
	return b.String()
}

// String renders the tuple for diagnostics.
func (t Tuple) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d[", t.ID)
	for i, v := range t.Vals {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(']')
	return b.String()
}

// --- binary encoding ---------------------------------------------------

// EncodedSize returns the number of bytes Encode will produce.
func (t Tuple) EncodedSize() int {
	n := 8 + 2 // id + column count
	for _, v := range t.Vals {
		n++ // type tag
		switch v.typ {
		case Int, Float:
			n += 8
		case String:
			n += 4 + len(v.s)
		}
	}
	return n
}

// Encode appends the binary form of the tuple to dst and returns the
// extended slice. The layout is: id (8 bytes), column count (2 bytes),
// then per value a 1-byte type tag followed by the payload.
func (t Tuple) Encode(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, t.ID)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(t.Vals)))
	for _, v := range t.Vals {
		dst = append(dst, byte(v.typ))
		switch v.typ {
		case Int:
			dst = binary.BigEndian.AppendUint64(dst, uint64(v.i))
		case Float:
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v.f))
		case String:
			dst = binary.BigEndian.AppendUint32(dst, uint32(len(v.s)))
			dst = append(dst, v.s...)
		}
	}
	return dst
}

// Decode parses one tuple from the front of src, returning the tuple
// and the number of bytes consumed.
func Decode(src []byte) (Tuple, int, error) {
	if len(src) < 10 {
		return Tuple{}, 0, fmt.Errorf("tuple: short buffer (%d bytes)", len(src))
	}
	t := Tuple{ID: binary.BigEndian.Uint64(src)}
	n := int(binary.BigEndian.Uint16(src[8:]))
	off := 10
	t.Vals = make([]Value, n)
	for i := 0; i < n; i++ {
		if off >= len(src) {
			return Tuple{}, 0, fmt.Errorf("tuple: truncated value %d", i)
		}
		typ := Type(src[off])
		off++
		switch typ {
		case Int:
			if off+8 > len(src) {
				return Tuple{}, 0, fmt.Errorf("tuple: truncated int value %d", i)
			}
			t.Vals[i] = I(int64(binary.BigEndian.Uint64(src[off:])))
			off += 8
		case Float:
			if off+8 > len(src) {
				return Tuple{}, 0, fmt.Errorf("tuple: truncated float value %d", i)
			}
			t.Vals[i] = F(math.Float64frombits(binary.BigEndian.Uint64(src[off:])))
			off += 8
		case String:
			if off+4 > len(src) {
				return Tuple{}, 0, fmt.Errorf("tuple: truncated string length %d", i)
			}
			l := int(binary.BigEndian.Uint32(src[off:]))
			off += 4
			if off+l > len(src) {
				return Tuple{}, 0, fmt.Errorf("tuple: truncated string value %d", i)
			}
			t.Vals[i] = S(string(src[off : off+l]))
			off += l
		default:
			return Tuple{}, 0, fmt.Errorf("tuple: unknown type tag %d", typ)
		}
	}
	return t, off, nil
}
