package tuple

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzValueCodec drives DecodeValue with arbitrary bytes and checks the
// codec's two invariants: anything it accepts re-encodes to exactly the
// bytes it consumed (with ValueSize agreeing on the count), and
// anything it rejects leaves no partial consumption. Seeds cover the
// values the simulator actually produces plus the encoding's edges:
// non-finite floats, empty and multi-KiB strings, extreme ints.
func FuzzValueCodec(f *testing.F) {
	for _, v := range []Value{
		I(0), I(1), I(-1), I(math.MaxInt64), I(math.MinInt64),
		F(0), F(-0.0), F(1.5), F(math.NaN()), F(math.Inf(1)), F(math.Inf(-1)),
		S(""), S("a"), S("héllo"), S(strings.Repeat("x", 4096)),
	} {
		f.Add(AppendValue(nil, v))
	}
	f.Add([]byte{})
	f.Add([]byte{byte(String), 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{99, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, n, err := DecodeValue(data)
		if err != nil {
			if n != 0 {
				t.Fatalf("rejected with n=%d", n)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if got := ValueSize(v); got != n {
			t.Fatalf("ValueSize = %d, decoder consumed %d", got, n)
		}
		re := AppendValue(nil, v)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode diverged\nin  %x\nout %x", data[:n], re)
		}
		// The decoded value must survive a second round trip untouched
		// (NaN payloads included — compare bits, not ==).
		v2, n2, err := DecodeValue(re)
		if err != nil || n2 != n {
			t.Fatalf("re-decode: n=%d err=%v", n2, err)
		}
		if !bytes.Equal(AppendValue(nil, v2), re) {
			t.Fatalf("second round trip diverged for %v", v)
		}
	})
}
