package tuple

import (
	"encoding/binary"
	"fmt"
	"math"
)

// AppendValue appends the binary form of a single value to dst: a
// 1-byte type tag followed by the payload (8 bytes for Int/Float,
// 4-byte length + bytes for String). Index structures use this to store
// separator keys.
func AppendValue(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.typ))
	switch v.typ {
	case Int:
		dst = binary.BigEndian.AppendUint64(dst, uint64(v.i))
	case Float:
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v.f))
	case String:
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(v.s)))
		dst = append(dst, v.s...)
	}
	return dst
}

// ValueSize returns the number of bytes AppendValue produces for v.
func ValueSize(v Value) int {
	switch v.typ {
	case String:
		return 1 + 4 + len(v.s)
	default:
		return 1 + 8
	}
}

// DecodeValue parses one value from the front of src, returning the
// value and bytes consumed.
func DecodeValue(src []byte) (Value, int, error) {
	if len(src) < 1 {
		return Value{}, 0, fmt.Errorf("tuple: empty value buffer")
	}
	typ := Type(src[0])
	switch typ {
	case Int:
		if len(src) < 9 {
			return Value{}, 0, fmt.Errorf("tuple: truncated int value")
		}
		return I(int64(binary.BigEndian.Uint64(src[1:]))), 9, nil
	case Float:
		if len(src) < 9 {
			return Value{}, 0, fmt.Errorf("tuple: truncated float value")
		}
		return F(math.Float64frombits(binary.BigEndian.Uint64(src[1:]))), 9, nil
	case String:
		if len(src) < 5 {
			return Value{}, 0, fmt.Errorf("tuple: truncated string header")
		}
		l := int(binary.BigEndian.Uint32(src[1:]))
		if len(src) < 5+l {
			return Value{}, 0, fmt.Errorf("tuple: truncated string payload")
		}
		return S(string(src[5 : 5+l])), 5 + l, nil
	default:
		return Value{}, 0, fmt.Errorf("tuple: unknown value tag %d", typ)
	}
}
