package tuple

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueCodecRoundTrip(t *testing.T) {
	vals := []Value{I(0), I(-1), I(math.MaxInt64), F(0), F(-2.75), S(""), S("hello")}
	for _, v := range vals {
		buf := AppendValue(nil, v)
		if len(buf) != ValueSize(v) {
			t.Errorf("%v: ValueSize %d != encoded %d", v, ValueSize(v), len(buf))
		}
		got, n, err := DecodeValue(buf)
		if err != nil || n != len(buf) || !Equal(got, v) {
			t.Errorf("%v: round trip got %v n=%d err=%v", v, got, n, err)
		}
	}
}

func TestValueCodecTruncation(t *testing.T) {
	buf := AppendValue(nil, S("abcdef"))
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeValue(buf[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if _, _, err := DecodeValue([]byte{0xEE, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("unknown tag accepted")
	}
}

func TestPropertyValueCodec(t *testing.T) {
	f := func(i int64, fl float64, s string, pick uint8) bool {
		if math.IsNaN(fl) {
			fl = 0
		}
		var v Value
		switch pick % 3 {
		case 0:
			v = I(i)
		case 1:
			v = F(fl)
		default:
			v = S(s)
		}
		got, n, err := DecodeValue(AppendValue(nil, v))
		return err == nil && n == ValueSize(v) && Equal(got, v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
