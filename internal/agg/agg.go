// Package agg implements incrementally maintainable aggregate states
// (Hanson §3.6): "a state for the aggregate, functions for updating it
// in case of deletion or insertion of values in the set being
// aggregated, and a function for computing the current value of the
// aggregate from the state."
//
// Sum, count and average are fully incremental. Min and max — an
// extension beyond the paper's list — are incremental on insert but may
// require recomputation when the current extreme is deleted; Delete
// reports this so the caller can rescan (a charged operation in the
// engine).
//
// The state encodes to a few dozen bytes, which is the paper's point:
// the whole aggregate state fits in (far less than) one disk block, so
// a query costs a single page read.
package agg

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Kind selects the aggregate function.
type Kind uint8

const (
	// Count counts tuples.
	Count Kind = iota
	// Sum totals a numeric column.
	Sum
	// Avg averages a numeric column.
	Avg
	// Min tracks the minimum of a numeric column.
	Min
	// Max tracks the maximum of a numeric column.
	Max
	// Var tracks the population variance via running sums of values
	// and squares (an extension beyond the paper's list; fully
	// incremental like Sum/Avg).
	Var
	// StdDev tracks the population standard deviation (sqrt of Var).
	StdDev
)

// String returns the SQL-ish name.
func (k Kind) String() string {
	switch k {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case Var:
		return "VAR"
	case StdDev:
		return "STDDEV"
	default:
		return fmt.Sprintf("KIND(%d)", uint8(k))
	}
}

// Incremental reports whether the kind supports deletion without ever
// needing recomputation.
func (k Kind) Incremental() bool {
	switch k {
	case Count, Sum, Avg, Var, StdDev:
		return true
	}
	return false
}

// State is an aggregate's running state.
type State struct {
	kind    Kind
	count   int64
	sum     float64
	sumSq   float64 // running sum of squares (Var/StdDev)
	extreme float64 // current min or max
}

// NewState creates an empty state of the given kind.
func NewState(kind Kind) *State { return &State{kind: kind} }

// Kind returns the aggregate kind.
func (s *State) Kind() Kind { return s.kind }

// Count returns the number of values currently aggregated.
func (s *State) Count() int64 { return s.count }

// Insert folds one value into the state.
func (s *State) Insert(v float64) {
	switch s.kind {
	case Min:
		if s.count == 0 || v < s.extreme {
			s.extreme = v
		}
	case Max:
		if s.count == 0 || v > s.extreme {
			s.extreme = v
		}
	}
	s.count++
	s.sum += v
	s.sumSq += v * v
}

// Delete removes one value from the state. For Min/Max it reports
// needRecompute = true when the deleted value was (at) the current
// extreme, in which case the caller must rebuild the state from the
// underlying set (Rebuild or a fresh NewState + Inserts).
func (s *State) Delete(v float64) (needRecompute bool) {
	s.count--
	s.sum -= v
	s.sumSq -= v * v
	if s.count <= 0 {
		s.count = 0
		s.sum = 0
		s.sumSq = 0
		s.extreme = 0
		return false
	}
	switch s.kind {
	case Min:
		return v <= s.extreme
	case Max:
		return v >= s.extreme
	}
	return false
}

// Value returns the aggregate's current value; ok is false when the
// aggregate is undefined (avg/min/max of an empty set).
func (s *State) Value() (v float64, ok bool) {
	switch s.kind {
	case Count:
		return float64(s.count), true
	case Sum:
		return s.sum, true
	case Avg:
		if s.count == 0 {
			return 0, false
		}
		return s.sum / float64(s.count), true
	case Min, Max:
		if s.count == 0 {
			return 0, false
		}
		return s.extreme, true
	case Var, StdDev:
		if s.count == 0 {
			return 0, false
		}
		mean := s.sum / float64(s.count)
		variance := s.sumSq/float64(s.count) - mean*mean
		if variance < 0 {
			variance = 0 // floating-point cancellation guard
		}
		if s.kind == Var {
			return variance, true
		}
		return math.Sqrt(variance), true
	}
	return 0, false
}

// Components exposes the state's raw parts for external storage (the
// grouped-aggregate store keeps them as row columns).
func (s *State) Components() (count int64, sum, sumSq, extreme float64) {
	return s.count, s.sum, s.sumSq, s.extreme
}

// Restore sets the state's raw parts (inverse of Components).
func (s *State) Restore(count int64, sum, sumSq, extreme float64) {
	s.count, s.sum, s.sumSq, s.extreme = count, sum, sumSq, extreme
}

// Reset empties the state.
func (s *State) Reset() {
	s.count = 0
	s.sum = 0
	s.sumSq = 0
	s.extreme = 0
}

// Rebuild resets the state and folds in every value; the recovery path
// after Delete reports needRecompute.
func (s *State) Rebuild(values []float64) {
	s.Reset()
	for _, v := range values {
		s.Insert(v)
	}
}

// EncodedSize is the byte size of an encoded state.
const EncodedSize = 1 + 8 + 8 + 8 + 8

// Encode appends the state's binary form to dst. It is 33 bytes —
// comfortably within one disk block, per §3.6.
func (s *State) Encode(dst []byte) []byte {
	dst = append(dst, byte(s.kind))
	dst = binary.BigEndian.AppendUint64(dst, uint64(s.count))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(s.sum))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(s.sumSq))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(s.extreme))
	return dst
}

// DecodeState parses a state from src.
func DecodeState(src []byte) (*State, error) {
	if len(src) < EncodedSize {
		return nil, fmt.Errorf("agg: short state buffer (%d bytes)", len(src))
	}
	k := Kind(src[0])
	if k > StdDev {
		return nil, fmt.Errorf("agg: unknown kind %d", src[0])
	}
	return &State{
		kind:    k,
		count:   int64(binary.BigEndian.Uint64(src[1:])),
		sum:     math.Float64frombits(binary.BigEndian.Uint64(src[9:])),
		sumSq:   math.Float64frombits(binary.BigEndian.Uint64(src[17:])),
		extreme: math.Float64frombits(binary.BigEndian.Uint64(src[25:])),
	}, nil
}
