package agg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCountSumAvg(t *testing.T) {
	for _, k := range []Kind{Count, Sum, Avg} {
		s := NewState(k)
		for _, v := range []float64{1, 2, 3, 4} {
			s.Insert(v)
		}
		v, ok := s.Value()
		if !ok {
			t.Fatalf("%s of nonempty set undefined", k)
		}
		var want float64
		switch k {
		case Count:
			want = 4
		case Sum:
			want = 10
		case Avg:
			want = 2.5
		}
		if v != want {
			t.Errorf("%s = %v, want %v", k, v, want)
		}
		if need := s.Delete(2); need {
			t.Errorf("%s.Delete reported recompute", k)
		}
		v, _ = s.Value()
		switch k {
		case Count:
			want = 3
		case Sum:
			want = 8
		case Avg:
			want = 8.0 / 3
		}
		if math.Abs(v-want) > 1e-12 {
			t.Errorf("%s after delete = %v, want %v", k, v, want)
		}
	}
}

func TestEmptyAggregates(t *testing.T) {
	if v, ok := NewState(Count).Value(); !ok || v != 0 {
		t.Errorf("empty COUNT = %v ok=%v, want 0 true", v, ok)
	}
	if v, ok := NewState(Sum).Value(); !ok || v != 0 {
		t.Errorf("empty SUM = %v ok=%v, want 0 true", v, ok)
	}
	for _, k := range []Kind{Avg, Min, Max} {
		if _, ok := NewState(k).Value(); ok {
			t.Errorf("empty %s should be undefined", k)
		}
	}
}

func TestMinMaxInsert(t *testing.T) {
	mn, mx := NewState(Min), NewState(Max)
	for _, v := range []float64{5, 3, 8, 3, 9, 1} {
		mn.Insert(v)
		mx.Insert(v)
	}
	if v, _ := mn.Value(); v != 1 {
		t.Errorf("MIN = %v", v)
	}
	if v, _ := mx.Value(); v != 9 {
		t.Errorf("MAX = %v", v)
	}
}

func TestMinMaxDeleteRecompute(t *testing.T) {
	s := NewState(Min)
	for _, v := range []float64{5, 3, 8} {
		s.Insert(v)
	}
	if need := s.Delete(8); need {
		t.Error("deleting non-extreme value requested recompute")
	}
	if need := s.Delete(3); !need {
		t.Error("deleting the minimum did not request recompute")
	}
	s.Rebuild([]float64{5})
	if v, ok := s.Value(); !ok || v != 5 {
		t.Errorf("after rebuild MIN = %v ok=%v", v, ok)
	}
}

func TestMaxDeleteRecompute(t *testing.T) {
	s := NewState(Max)
	s.Insert(2)
	s.Insert(7)
	if need := s.Delete(7); !need {
		t.Error("deleting the maximum did not request recompute")
	}
}

func TestDeleteToEmpty(t *testing.T) {
	for _, k := range []Kind{Count, Sum, Avg, Min, Max} {
		s := NewState(k)
		s.Insert(4)
		if need := s.Delete(4); need {
			t.Errorf("%s: delete-to-empty requested recompute", k)
		}
		if s.Count() != 0 {
			t.Errorf("%s: count = %d after emptying", k, s.Count())
		}
	}
}

func TestIncrementalFlag(t *testing.T) {
	for _, k := range []Kind{Count, Sum, Avg} {
		if !k.Incremental() {
			t.Errorf("%s should be incremental", k)
		}
	}
	for _, k := range []Kind{Min, Max} {
		if k.Incremental() {
			t.Errorf("%s should not be fully incremental", k)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := NewState(Avg)
	s.Insert(3.5)
	s.Insert(-2)
	buf := s.Encode(nil)
	if len(buf) != EncodedSize {
		t.Errorf("encoded %d bytes, want %d", len(buf), EncodedSize)
	}
	got, err := DecodeState(buf)
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := s.Value()
	v2, ok := got.Value()
	if !ok || v1 != v2 || got.Kind() != Avg || got.Count() != 2 {
		t.Errorf("round trip: %v vs %v", s, got)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeState([]byte{1, 2, 3}); err == nil {
		t.Error("short buffer accepted")
	}
	bad := make([]byte, EncodedSize)
	bad[0] = 0xFF
	if _, err := DecodeState(bad); err == nil {
		t.Error("unknown kind accepted")
	}
}

// Property: after any sequence of inserts followed by deleting a
// subset (with rebuilds when requested), SUM/COUNT/AVG/MIN/MAX agree
// with direct computation over the survivors.
func TestPropertyAgreesWithDirectComputation(t *testing.T) {
	fn := func(seed int64, nRaw, delRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%50) + 1
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(rng.Intn(1000)) / 4
		}
		nDel := int(delRaw) % n
		states := map[Kind]*State{}
		for _, k := range []Kind{Count, Sum, Avg, Min, Max} {
			s := NewState(k)
			for _, v := range vals {
				s.Insert(v)
			}
			states[k] = s
		}
		survivors := append([]float64(nil), vals...)
		for i := 0; i < nDel; i++ {
			idx := rng.Intn(len(survivors))
			v := survivors[idx]
			survivors = append(survivors[:idx], survivors[idx+1:]...)
			for _, s := range states {
				if s.Delete(v) {
					s.Rebuild(survivors)
				}
			}
		}
		var sum float64
		mn, mx := math.Inf(1), math.Inf(-1)
		for _, v := range survivors {
			sum += v
			mn = math.Min(mn, v)
			mx = math.Max(mx, v)
		}
		if v, _ := states[Count].Value(); v != float64(len(survivors)) {
			return false
		}
		if v, _ := states[Sum].Value(); math.Abs(v-sum) > 1e-6 {
			return false
		}
		if len(survivors) == 0 {
			for _, k := range []Kind{Avg, Min, Max} {
				if _, ok := states[k].Value(); ok {
					return false
				}
			}
			return true
		}
		if v, _ := states[Avg].Value(); math.Abs(v-sum/float64(len(survivors))) > 1e-6 {
			return false
		}
		if v, _ := states[Min].Value(); v != mn {
			return false
		}
		if v, _ := states[Max].Value(); v != mx {
			return false
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	s := NewState(Avg)
	for i := 0; i < b.N; i++ {
		s.Insert(float64(i))
	}
}

func TestVarAndStdDev(t *testing.T) {
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9} // classic: mean 5, var 4, sd 2
	v, sd := NewState(Var), NewState(StdDev)
	for _, x := range vals {
		v.Insert(x)
		sd.Insert(x)
	}
	if got, ok := v.Value(); !ok || math.Abs(got-4) > 1e-9 {
		t.Errorf("VAR = %v ok=%v, want 4", got, ok)
	}
	if got, ok := sd.Value(); !ok || math.Abs(got-2) > 1e-9 {
		t.Errorf("STDDEV = %v ok=%v, want 2", got, ok)
	}
	// Incremental delete: removing 9 and 2 keeps agreement with direct
	// computation over the survivors.
	for _, x := range []float64{9, 2} {
		if v.Delete(x) || sd.Delete(x) {
			t.Error("Var/StdDev delete requested recompute")
		}
	}
	rest := []float64{4, 4, 4, 5, 5, 7}
	var mean, sq float64
	for _, x := range rest {
		mean += x
	}
	mean /= float64(len(rest))
	for _, x := range rest {
		sq += (x - mean) * (x - mean)
	}
	want := sq / float64(len(rest))
	if got, _ := v.Value(); math.Abs(got-want) > 1e-9 {
		t.Errorf("VAR after deletes = %v, want %v", got, want)
	}
	if got, _ := sd.Value(); math.Abs(got-math.Sqrt(want)) > 1e-9 {
		t.Errorf("STDDEV after deletes = %v, want %v", got, math.Sqrt(want))
	}
}

func TestVarEmptyAndSingle(t *testing.T) {
	s := NewState(Var)
	if _, ok := s.Value(); ok {
		t.Error("empty VAR should be undefined")
	}
	s.Insert(5)
	if got, ok := s.Value(); !ok || got != 0 {
		t.Errorf("single-value VAR = %v ok=%v, want 0", got, ok)
	}
}

func TestVarEncodeRoundTrip(t *testing.T) {
	s := NewState(StdDev)
	s.Insert(1)
	s.Insert(3)
	got, err := DecodeState(s.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := s.Value()
	v2, ok := got.Value()
	if !ok || math.Abs(v1-v2) > 1e-12 {
		t.Errorf("round trip: %v vs %v", v1, v2)
	}
}
