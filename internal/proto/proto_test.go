package proto

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"viewmat/internal/agg"
	"viewmat/internal/core"
	"viewmat/internal/pred"
	"viewmat/internal/tuple"
)

func TestRequestRoundTrip(t *testing.T) {
	def := core.Def{
		Name:      "vjoin",
		Kind:      core.Join,
		Relations: []string{"r1", "r2"},
		Pred: pred.New(
			pred.Cmp{Rel: 0, Col: 0, Op: pred.Lt, Val: tuple.I(100)},
			pred.JoinEq{LRel: 0, LCol: 1, RRel: 1, RCol: 0},
		),
		Project:    [][]int{{0, 2}, {1}},
		ViewKeyCol: 0,
		AggKind:    agg.Sum,
		AggCol:     1,
	}
	dto := DefToDTO(def)
	req := &Request{
		Op:       OpCreateView,
		View:     &dto,
		Strategy: int(core.Deferred),
		TxOps: []TxOpDTO{
			{Kind: TxInsert, Rel: "r1", Vals: ValuesToDTO([]tuple.Value{tuple.I(4), tuple.F(2.5), tuple.S("x")})},
			{Kind: TxDelete, Rel: "r1", Key: ValueToDTO(tuple.I(9)), ID: 77},
		},
		Range: RangeToDTO(pred.NewRange(tuple.I(1), tuple.I(50), true, false)),
		Plan:  -1,
	}

	var buf bytes.Buffer
	if err := WriteRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, req) {
		t.Fatalf("round trip mutated request:\n got %+v\nwant %+v", got, req)
	}

	// The Def survives the DTO round trip semantically: same validation
	// outcome and same rendered predicate.
	back := DefFromDTO(*got.View)
	if back.Name != def.Name || back.Kind != def.Kind || back.Pred.String() != def.Pred.String() {
		t.Fatalf("Def round trip: got %+v", back)
	}
	rg := RangeFromDTO(got.Range)
	if rg == nil || rg.Lo == nil || rg.Hi == nil || rg.Lo.Int() != 1 || rg.Hi.Int() != 50 || !rg.LoInc || rg.HiInc {
		t.Fatalf("Range round trip: got %+v", rg)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resp := &Response{
		Code: CodeOK,
		IDs:  []uint64{3, 9},
		Rows: [][]ValueDTO{ValuesToDTO([]tuple.Value{tuple.I(1), tuple.S("a")})},
		Health: &core.Health{
			Relations: 2, Views: 3, Durable: true,
		},
	}
	var buf bytes.Buffer
	if err := WriteResponse(&buf, resp); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResponse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, resp) {
		t.Fatalf("round trip mutated response:\n got %+v\nwant %+v", got, resp)
	}
}

func TestReadRequestRejectsGarbagePayload(t *testing.T) {
	// A well-framed payload that is not a gob Request must fail with
	// ErrDecode, not panic.
	var buf bytes.Buffer
	if err := writeMsg(&buf, "not a request"); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRequest(&buf); !errors.Is(err, ErrDecode) {
		t.Fatalf("err = %v, want ErrDecode", err)
	}
}
