// Package proto defines the wire protocol spoken between viewmatd
// (internal/server) and its Go client (internal/client): gob-encoded
// request/response messages carried in the same length-prefixed
// CRC-32C frames the write-ahead log uses (internal/frame).
//
// The protocol is strictly request/response: a client writes one
// request frame and reads exactly one response frame before sending
// the next. Concurrency comes from many connections, not pipelining —
// the server multiplexes all connections onto one thread-safe
// core.Database.
//
// Engine types whose fields are unexported (tuple.Value, pred atoms)
// cross the wire as explicit DTOs; conversions live here so the server
// and client agree on exactly one encoding.
package proto

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"viewmat/internal/agg"
	"viewmat/internal/core"
	"viewmat/internal/frame"
	"viewmat/internal/pred"
	"viewmat/internal/tuple"
)

// MaxFrame is the default cap on a message payload. Requests and
// responses are small (a query result is the largest message); the cap
// keeps a corrupt or hostile length header from forcing a giant
// allocation.
const MaxFrame = 1 << 24

// ErrDecode marks bytes that arrived in a valid frame but do not
// decode to a protocol message.
var ErrDecode = errors.New("proto: malformed message")

// Op enumerates the request operations.
type Op uint8

// Request operations.
const (
	// OpPing checks liveness; it carries no arguments.
	OpPing Op = 1 + iota
	// OpCreateRelBTree creates a B+-tree-clustered base relation
	// (Name, Schema, KeyCol).
	OpCreateRelBTree
	// OpCreateRelHash creates a hash-clustered base relation (Name,
	// Schema, KeyCol, Buckets).
	OpCreateRelHash
	// OpCreateView creates a view (View, Strategy).
	OpCreateView
	// OpDropView drops a view (Name).
	OpDropView
	// OpCommit applies one transaction's ops atomically (TxOps) and
	// returns the ids assigned to inserts/updates, in op order.
	OpCommit
	// OpQueryView queries a select-project or join view (Name, Range,
	// Plan).
	OpQueryView
	// OpQueryAggregate reads an aggregate view's value (Name).
	OpQueryAggregate
	// OpRefreshAll brings every stale view current.
	OpRefreshAll
	// OpCheckpoint forces a durability checkpoint.
	OpCheckpoint
	// OpHealth returns the engine health snapshot.
	OpHealth
	// OpAdvisorStats returns the adaptive advisor's per-view state.
	OpAdvisorStats
	// OpAdaptTick runs one adaptive advisor decision round and
	// returns the flips it applied.
	OpAdaptTick
	// OpCreateSecondary adds a secondary index on a base relation
	// column (Name, KeyCol).
	OpCreateSecondary
)

// String names the op for diagnostics.
func (o Op) String() string {
	switch o {
	case OpPing:
		return "ping"
	case OpCreateRelBTree:
		return "create-rel-btree"
	case OpCreateRelHash:
		return "create-rel-hash"
	case OpCreateView:
		return "create-view"
	case OpDropView:
		return "drop-view"
	case OpCommit:
		return "commit"
	case OpQueryView:
		return "query-view"
	case OpQueryAggregate:
		return "query-aggregate"
	case OpRefreshAll:
		return "refresh-all"
	case OpCheckpoint:
		return "checkpoint"
	case OpHealth:
		return "health"
	case OpAdvisorStats:
		return "advisor-stats"
	case OpAdaptTick:
		return "adapt-tick"
	case OpCreateSecondary:
		return "create-secondary"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Code classifies a response.
type Code uint8

// Response codes.
const (
	// CodeOK is a successful response.
	CodeOK Code = iota
	// CodeBusy means the admission-control cap was reached; the
	// request was not executed and may be retried.
	CodeBusy
	// CodeBadRequest means the request could not be decoded or failed
	// validation before touching the engine.
	CodeBadRequest
	// CodeError means the engine rejected or failed the operation; Err
	// carries the message.
	CodeError
	// CodeShutdown means the server is draining and accepted no new
	// work.
	CodeShutdown
)

// Request is one client operation. Fields beyond Op are op-specific;
// see the Op constants.
type Request struct {
	Op Op

	// Name is the relation name for relation DDL and the view name for
	// view operations.
	Name string

	// Schema, KeyCol, Buckets parameterize relation DDL.
	Schema  []ColumnDTO
	KeyCol  int
	Buckets int

	// View and Strategy parameterize OpCreateView.
	View     *ViewDTO
	Strategy int

	// TxOps is OpCommit's op list.
	TxOps []TxOpDTO

	// Range optionally restricts OpQueryView to a key interval; Plan
	// (< 0 = the view's default) selects the query-modification plan.
	Range *RangeDTO
	Plan  int
}

// Response answers one Request.
type Response struct {
	Code Code
	// Err carries the failure message for non-OK codes.
	Err string

	// IDs are the tuple ids assigned by OpCommit, one per insert or
	// update op, in op order.
	IDs []uint64

	// Rows is OpQueryView's result.
	Rows [][]ValueDTO

	// Agg and AggOK are OpQueryAggregate's result (AggOK false = the
	// aggregate is undefined, e.g. AVG over the empty set).
	Agg   float64
	AggOK bool

	// Health is OpHealth's result.
	Health *core.Health

	// Advisor is OpAdvisorStats' result (nil when the advisor is
	// disabled); Flips is OpAdaptTick's result.
	Advisor []core.AdvisorViewStat
	Flips   []core.FlipReport
}

// WriteRequest frames and writes one request.
func WriteRequest(w io.Writer, req *Request) error { return writeMsg(w, req) }

// WriteResponse frames and writes one response.
func WriteResponse(w io.Writer, resp *Response) error { return writeMsg(w, resp) }

func writeMsg(w io.Writer, msg any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(msg); err != nil {
		return fmt.Errorf("proto: encoding: %w", err)
	}
	return frame.Write(w, buf.Bytes(), MaxFrame)
}

// ReadRequest reads and decodes one request frame. Frame-level damage
// surfaces as the frame package's typed errors; a frame that passes
// its checksum but does not decode wraps ErrDecode. Neither ever
// panics, whatever the bytes.
func ReadRequest(r io.Reader) (*Request, error) {
	payload, err := frame.Read(r, MaxFrame)
	if err != nil {
		return nil, err
	}
	var req Request
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&req); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecode, err)
	}
	return &req, nil
}

// ReadResponse reads and decodes one response frame.
func ReadResponse(r io.Reader) (*Response, error) {
	payload, err := frame.Read(r, MaxFrame)
	if err != nil {
		return nil, err
	}
	var resp Response
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&resp); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecode, err)
	}
	return &resp, nil
}

// --- DTOs -----------------------------------------------------------------

// ValueDTO is tuple.Value with exported fields.
type ValueDTO struct {
	T uint8
	I int64
	F float64
	S string
}

// ValueToDTO converts a tuple.Value for the wire.
func ValueToDTO(v tuple.Value) ValueDTO {
	switch v.Type() {
	case tuple.Float:
		return ValueDTO{T: uint8(tuple.Float), F: v.Float()}
	case tuple.String:
		return ValueDTO{T: uint8(tuple.String), S: v.Str()}
	default:
		return ValueDTO{T: uint8(tuple.Int), I: v.Int()}
	}
}

// ValueFromDTO converts a wire value back. Unknown type tags decode as
// Int so hostile input degrades instead of panicking; schema
// validation catches the mismatch server-side.
func ValueFromDTO(d ValueDTO) tuple.Value {
	switch tuple.Type(d.T) {
	case tuple.Float:
		return tuple.F(d.F)
	case tuple.String:
		return tuple.S(d.S)
	default:
		return tuple.I(d.I)
	}
}

// ValuesToDTO converts a row of values.
func ValuesToDTO(vals []tuple.Value) []ValueDTO {
	out := make([]ValueDTO, len(vals))
	for i, v := range vals {
		out[i] = ValueToDTO(v)
	}
	return out
}

// ValuesFromDTO converts a wire row back.
func ValuesFromDTO(dtos []ValueDTO) []tuple.Value {
	out := make([]tuple.Value, len(dtos))
	for i, d := range dtos {
		out[i] = ValueFromDTO(d)
	}
	return out
}

// ColumnDTO is one schema column.
type ColumnDTO struct {
	Name string
	Type uint8
}

// SchemaToDTO converts a schema for the wire.
func SchemaToDTO(s *tuple.Schema) []ColumnDTO {
	out := make([]ColumnDTO, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = ColumnDTO{Name: c.Name, Type: uint8(c.Type)}
	}
	return out
}

// SchemaFromDTO converts a wire schema back.
func SchemaFromDTO(cols []ColumnDTO) *tuple.Schema {
	out := make([]tuple.Column, len(cols))
	for i, c := range cols {
		out[i] = tuple.Column{Name: c.Name, Type: tuple.Type(c.Type)}
	}
	return tuple.NewSchema(out...)
}

// AtomDTO is one predicate atom: a comparison (Join false) or a join
// equality (Join true).
type AtomDTO struct {
	Join bool

	// Comparison fields.
	Rel, Col int
	Op       uint8
	Val      ValueDTO

	// Join-equality fields.
	LRel, LCol, RRel, RCol int
}

// ViewDTO is core.Def plus nothing: the definition's predicate atoms
// are flattened into AtomDTOs.
type ViewDTO struct {
	Name       string
	Kind       int
	Relations  []string
	Atoms      []AtomDTO
	Project    [][]int
	ViewKeyCol int
	AggKind    uint8
	AggCol     int
	GroupBy    int
}

// DefToDTO converts a view definition for the wire.
func DefToDTO(d core.Def) ViewDTO {
	dto := ViewDTO{
		Name:       d.Name,
		Kind:       int(d.Kind),
		Relations:  append([]string(nil), d.Relations...),
		Project:    d.Project,
		ViewKeyCol: d.ViewKeyCol,
		AggKind:    uint8(d.AggKind),
		AggCol:     d.AggCol,
		GroupBy:    d.GroupBy,
	}
	if d.Pred != nil {
		for _, a := range d.Pred.Atoms {
			switch at := a.(type) {
			case pred.Cmp:
				dto.Atoms = append(dto.Atoms, AtomDTO{Rel: at.Rel, Col: at.Col, Op: uint8(at.Op), Val: ValueToDTO(at.Val)})
			case pred.JoinEq:
				dto.Atoms = append(dto.Atoms, AtomDTO{Join: true, LRel: at.LRel, LCol: at.LCol, RRel: at.RRel, RCol: at.RCol})
			}
		}
	}
	return dto
}

// DefFromDTO converts a wire view definition back. The result is not
// yet validated; CreateView runs Def.Validate against the live schemas.
func DefFromDTO(dto ViewDTO) core.Def {
	atoms := make([]pred.Atom, 0, len(dto.Atoms))
	for _, a := range dto.Atoms {
		if a.Join {
			atoms = append(atoms, pred.JoinEq{LRel: a.LRel, LCol: a.LCol, RRel: a.RRel, RCol: a.RCol})
		} else {
			atoms = append(atoms, pred.Cmp{Rel: a.Rel, Col: a.Col, Op: pred.Op(a.Op), Val: ValueFromDTO(a.Val)})
		}
	}
	return core.Def{
		Name:       dto.Name,
		Kind:       core.Kind(dto.Kind),
		Relations:  dto.Relations,
		Pred:       pred.New(atoms...),
		Project:    dto.Project,
		ViewKeyCol: dto.ViewKeyCol,
		AggKind:    agg.Kind(dto.AggKind),
		AggCol:     dto.AggCol,
		GroupBy:    dto.GroupBy,
	}
}

// RangeDTO is pred.Range with explicit presence flags for the open
// bounds.
type RangeDTO struct {
	HasLo, HasHi bool
	Lo, Hi       ValueDTO
	LoInc, HiInc bool
}

// RangeToDTO converts a query range (nil = unrestricted) for the wire.
func RangeToDTO(rg *pred.Range) *RangeDTO {
	if rg == nil {
		return nil
	}
	out := &RangeDTO{LoInc: rg.LoInc, HiInc: rg.HiInc}
	if rg.Lo != nil {
		out.HasLo, out.Lo = true, ValueToDTO(*rg.Lo)
	}
	if rg.Hi != nil {
		out.HasHi, out.Hi = true, ValueToDTO(*rg.Hi)
	}
	return out
}

// RangeFromDTO converts a wire range back (nil = unrestricted).
func RangeFromDTO(d *RangeDTO) *pred.Range {
	if d == nil {
		return nil
	}
	out := &pred.Range{LoInc: d.LoInc, HiInc: d.HiInc}
	if d.HasLo {
		v := ValueFromDTO(d.Lo)
		out.Lo = &v
	}
	if d.HasHi {
		v := ValueFromDTO(d.Hi)
		out.Hi = &v
	}
	return out
}

// Transaction op kinds for TxOpDTO.
const (
	// TxInsert inserts Vals.
	TxInsert uint8 = iota
	// TxDelete deletes the tuple (Key, ID).
	TxDelete
	// TxUpdate replaces the tuple (Key, ID) with Vals.
	TxUpdate
)

// TxOpDTO is one operation inside an OpCommit request.
type TxOpDTO struct {
	Kind uint8
	Rel  string
	Vals []ValueDTO
	Key  ValueDTO
	ID   uint64
}
