package relation

import (
	"testing"

	"viewmat/internal/pred"
	"viewmat/internal/storage"
	"viewmat/internal/tuple"
)

func testEnv(t testing.TB) (*storage.Disk, *storage.Pool, *storage.Meter) {
	t.Helper()
	d := storage.NewDisk(256)
	m := storage.NewMeter()
	return d, storage.NewPool(d, m, 128), m
}

func empSchema() *tuple.Schema {
	return tuple.NewSchema(tuple.Col("dept", tuple.Int), tuple.Col("name", tuple.String), tuple.Col("salary", tuple.Int))
}

func emp(id uint64, dept int64, name string, sal int64) tuple.Tuple {
	return tuple.New(id, tuple.I(dept), tuple.S(name), tuple.I(sal))
}

func TestBTreeRelationCRUD(t *testing.T) {
	d, p, _ := testEnv(t)
	r, err := NewBTree(d, p, "emp", empSchema(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 30; i++ {
		if err := r.Insert(emp(uint64(i+1), i%5, "e", 1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != 30 {
		t.Errorf("Len = %d", r.Len())
	}
	got, err := r.Scan(pred.PointRange(tuple.I(3)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Errorf("dept 3 scan = %d tuples, want 6", len(got))
	}
	tp, ok, err := r.Delete(tuple.I(2), 3)
	if err != nil || !ok {
		t.Fatalf("delete: ok=%v err=%v", ok, err)
	}
	if tp.Vals[2].Int() != 1002 {
		t.Errorf("deleted tuple = %v", tp)
	}
	if _, ok, _ := r.Get(tuple.I(2), 3); ok {
		t.Error("deleted tuple still present")
	}
	if r.Len() != 29 {
		t.Errorf("Len after delete = %d", r.Len())
	}
}

func TestSchemaValidationOnInsert(t *testing.T) {
	d, p, _ := testEnv(t)
	r, _ := NewBTree(d, p, "emp", empSchema(), 0)
	if err := r.Insert(tuple.New(1, tuple.I(1))); err == nil {
		t.Error("wrong-arity tuple accepted")
	}
	if err := r.Insert(tuple.New(1, tuple.S("x"), tuple.S("y"), tuple.I(3))); err == nil {
		t.Error("wrong-typed tuple accepted")
	}
}

func TestHashRelationCRUD(t *testing.T) {
	d, p, _ := testEnv(t)
	r, err := NewHash(d, p, "dept", empSchema(), 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 20; i++ {
		if err := r.Insert(emp(uint64(i+1), i, "d", i)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := r.LookupKey(tuple.I(7))
	if err != nil || len(got) != 1 || got[0].ID != 8 {
		t.Errorf("LookupKey(7) = %v err=%v", got, err)
	}
	if _, err := r.Scan(pred.FullRange()); err == nil {
		t.Error("range scan on hash relation should error")
	}
	all, err := r.ScanAll()
	if err != nil || len(all) != 20 {
		t.Errorf("ScanAll = %d tuples err=%v", len(all), err)
	}
}

func TestKeyColValidation(t *testing.T) {
	d, p, _ := testEnv(t)
	if _, err := NewBTree(d, p, "x", empSchema(), 9); err == nil {
		t.Error("out-of-range key column accepted")
	}
	if _, err := NewHash(d, p, "y", empSchema(), -1, 4); err == nil {
		t.Error("negative key column accepted")
	}
}

func TestSecondaryIndexLookup(t *testing.T) {
	d, p, _ := testEnv(t)
	r, _ := NewBTree(d, p, "emp", empSchema(), 0) // clustered on dept
	for i := int64(0); i < 40; i++ {
		if err := r.Insert(emp(uint64(i+1), i%4, "e", 1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.AddSecondary(2); err != nil { // salary
		t.Fatal(err)
	}
	if !r.HasSecondary(2) {
		t.Error("HasSecondary(2) = false")
	}
	got, err := r.LookupSecondary(2, pred.NewRange(tuple.I(1010), tuple.I(1019), true, true))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("secondary lookup found %d, want 10", len(got))
	}
	for _, tp := range got {
		s := tp.Vals[2].Int()
		if s < 1010 || s > 1019 {
			t.Errorf("out-of-range salary %d", s)
		}
	}
}

func TestSecondaryMaintainedByInsertDelete(t *testing.T) {
	d, p, _ := testEnv(t)
	r, _ := NewBTree(d, p, "emp", empSchema(), 0)
	if err := r.AddSecondary(2); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		if err := r.Insert(emp(uint64(i+1), i, "e", 100*i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok, err := r.Delete(tuple.I(5), 6); err != nil || !ok {
		t.Fatal("delete failed")
	}
	got, err := r.LookupSecondary(2, pred.PointRange(tuple.I(500)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("secondary still finds deleted tuple: %v", got)
	}
	got, _ = r.LookupSecondary(2, pred.PointRange(tuple.I(300)))
	if len(got) != 1 || got[0].ID != 4 {
		t.Errorf("secondary lookup = %v", got)
	}
}

func TestSecondaryErrors(t *testing.T) {
	d, p, _ := testEnv(t)
	r, _ := NewBTree(d, p, "emp", empSchema(), 0)
	if err := r.AddSecondary(0); err == nil {
		t.Error("secondary on clustering column accepted")
	}
	if err := r.AddSecondary(2); err != nil {
		t.Fatal(err)
	}
	if err := r.AddSecondary(2); err == nil {
		t.Error("duplicate secondary accepted")
	}
	if _, err := r.LookupSecondary(1, pred.FullRange()); err == nil {
		t.Error("lookup on missing secondary succeeded")
	}
}

func TestIndexHeightAndPages(t *testing.T) {
	d, p, _ := testEnv(t)
	r, _ := NewBTree(d, p, "emp", empSchema(), 0)
	for i := int64(0); i < 500; i++ {
		if err := r.Insert(emp(uint64(i+1), i, "e", i)); err != nil {
			t.Fatal(err)
		}
	}
	if r.IndexHeight() < 1 {
		t.Errorf("IndexHeight = %d", r.IndexHeight())
	}
	if r.Pages() < 10 {
		t.Errorf("Pages = %d, want many for 500 tuples on 256-byte pages", r.Pages())
	}
}

func TestUnclusteredCostsMoreThanClustered(t *testing.T) {
	// The structural fact behind Figure 1's clustered-vs-unclustered
	// gap: fetching a key range via a secondary index touches ~1 page
	// per tuple; the clustered scan touches ~1 page per T tuples.
	d := storage.NewDisk(512)
	m := storage.NewMeter()
	p := storage.NewPool(d, m, 4) // tiny pool: per-fetch descents stay cold
	r, err := NewBTree(d, p, "emp", empSchema(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Clustered on dept; salary correlates inversely so a salary range
	// is scattered across dept order.
	for i := int64(0); i < 400; i++ {
		if err := r.Insert(emp(uint64(i+1), i, "e", (i*797)%400)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.AddSecondary(2); err != nil {
		t.Fatal(err)
	}

	p.EvictAll()
	before := m.Snapshot()
	cl, err := r.Scan(pred.NewRange(tuple.I(100), tuple.I(199), true, true))
	if err != nil {
		t.Fatal(err)
	}
	clusteredReads := m.Snapshot().Sub(before).Reads

	p.EvictAll()
	before = m.Snapshot()
	un, err := r.LookupSecondary(2, pred.NewRange(tuple.I(100), tuple.I(199), true, true))
	if err != nil {
		t.Fatal(err)
	}
	unclusteredReads := m.Snapshot().Sub(before).Reads

	if len(cl) != 100 || len(un) != 100 {
		t.Fatalf("result sizes: clustered %d unclustered %d", len(cl), len(un))
	}
	if unclusteredReads < 2*clusteredReads {
		t.Errorf("expected unclustered (%d reads) ≫ clustered (%d reads)", unclusteredReads, clusteredReads)
	}
}
