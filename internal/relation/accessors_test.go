package relation

import (
	"testing"

	"viewmat/internal/pred"
	"viewmat/internal/storage"
	"viewmat/internal/tuple"
)

func TestAccessorsBTree(t *testing.T) {
	d, p, _ := testEnv(t)
	r, err := NewBTree(d, p, "emp", empSchema(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "emp" {
		t.Errorf("Name = %q", r.Name())
	}
	if r.Schema() == nil || len(r.Schema().Cols) != 3 {
		t.Errorf("Schema = %v", r.Schema())
	}
	if r.KeyCol() != 0 {
		t.Errorf("KeyCol = %d", r.KeyCol())
	}
	if r.Kind() != ClusteredBTree {
		t.Errorf("Kind = %v", r.Kind())
	}
	if r.Len() != 0 || r.Pages() != 1 {
		t.Errorf("empty relation Len=%d Pages=%d", r.Len(), r.Pages())
	}
	if r.IndexHeight() != 0 {
		t.Errorf("empty B+-tree IndexHeight = %d", r.IndexHeight())
	}
}

func TestAccessorsHash(t *testing.T) {
	d, p, _ := testEnv(t)
	r, err := NewHash(d, p, "dept", empSchema(), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind() != ClusteredHash {
		t.Errorf("Kind = %v", r.Kind())
	}
	if r.IndexHeight() != 1 {
		t.Errorf("hash IndexHeight = %d, want 1 (directory probe)", r.IndexHeight())
	}
	for i := int64(0); i < 12; i++ {
		if err := r.Insert(emp(uint64(i+1), i, "d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != 12 {
		t.Errorf("Len = %d", r.Len())
	}
	if r.Pages() < 4 {
		t.Errorf("Pages = %d", r.Pages())
	}
	// Delete and Get through the hash paths.
	tp, ok, err := r.Delete(tuple.I(5), 6)
	if err != nil || !ok || tp.Vals[0].Int() != 5 {
		t.Errorf("hash Delete = %v ok=%v err=%v", tp, ok, err)
	}
	if _, ok, _ := r.Get(tuple.I(5), 6); ok {
		t.Error("hash Get found deleted tuple")
	}
	if _, ok, _ := r.Delete(tuple.I(5), 6); ok {
		t.Error("hash double delete succeeded")
	}
}

func TestLookupKeyOnBTree(t *testing.T) {
	d, p, _ := testEnv(t)
	r, _ := NewBTree(d, p, "emp", empSchema(), 0)
	for i := int64(0); i < 9; i++ {
		if err := r.Insert(emp(uint64(i+1), i%3, "e", i)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := r.LookupKey(tuple.I(1))
	if err != nil || len(got) != 3 {
		t.Errorf("LookupKey via B+-tree = %d tuples, err %v", len(got), err)
	}
}

func TestIterStreams(t *testing.T) {
	d, p, _ := testEnv(t)
	r, _ := NewBTree(d, p, "emp", empSchema(), 0)
	for i := int64(0); i < 25; i++ {
		if err := r.Insert(emp(uint64(i+1), i, "e", i)); err != nil {
			t.Fatal(err)
		}
	}
	it, err := r.Iter(pred.NewRange(tuple.I(5), tuple.I(9), true, true))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 5 {
		t.Errorf("Iter yielded %d, want 5", n)
	}
	// Iter on a hash relation errors.
	h, _ := NewHash(d, p, "h", empSchema(), 0, 2)
	if _, err := h.Iter(nil); err == nil {
		t.Error("Iter on hash relation succeeded")
	}
}

func TestDeleteOfAbsent(t *testing.T) {
	d, p, _ := testEnv(t)
	r, _ := NewBTree(d, p, "emp", empSchema(), 0)
	if _, ok, err := r.Delete(tuple.I(1), 1); ok || err != nil {
		t.Errorf("delete of absent: ok=%v err=%v", ok, err)
	}
}

func TestStatsStringer(t *testing.T) {
	s := storage.Stats{Reads: 1, Writes: 2, Screens: 3, ADTouches: 4}
	if got := s.String(); got != "reads=1 writes=2 screens=3 adTouches=4" {
		t.Errorf("Stats.String() = %q", got)
	}
}
