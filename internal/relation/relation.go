// Package relation ties an access method to a schema: a Relation is a
// named, schema-checked clustered store (B+-tree or hash) with optional
// unclustered secondary indexes.
//
// The paper's setup (§3.1) maps directly onto this package: R and R1
// are relations clustered by B+-tree on the view-predicate field, R2 is
// clustered by hashing on the join field, and the Model-1 "unclustered"
// query-modification plan uses a secondary index on a non-clustering
// column.
package relation

import (
	"fmt"

	"viewmat/internal/btree"
	"viewmat/internal/colpage"
	"viewmat/internal/hashidx"
	"viewmat/internal/pred"
	"viewmat/internal/storage"
	"viewmat/internal/tuple"
	"viewmat/internal/vec"
)

// Kind selects the clustering access method.
type Kind int

const (
	// ClusteredBTree clusters tuples in a B+-tree on the key column.
	ClusteredBTree Kind = iota
	// ClusteredHash clusters tuples by hashing on the key column.
	ClusteredHash
)

// Relation is a stored relation. Not safe for concurrent use.
type Relation struct {
	name   string
	schema *tuple.Schema
	keyCol int
	kind   Kind

	bt *btree.Tree
	hx *hashidx.Index

	pool        *storage.Pool
	disk        *storage.Disk
	secondaries map[int]*Secondary
}

// Secondary is an unclustered index: a B+-tree of pointer entries
// (indexed value, primary key value, tuple id). A lookup finds pointer
// entries by indexed value and then fetches each tuple through the
// clustering index — the random-page behaviour the paper prices with
// y(N, b, ·) for the unclustered plan.
type Secondary struct {
	col int
	bt  *btree.Tree
}

// NewBTree creates a relation clustered by B+-tree on keyCol.
func NewBTree(disk *storage.Disk, pool *storage.Pool, name string, schema *tuple.Schema, keyCol int) (*Relation, error) {
	if keyCol < 0 || keyCol >= len(schema.Cols) {
		return nil, fmt.Errorf("relation %s: key column %d out of range", name, keyCol)
	}
	bt, err := btree.New(pool, disk.Open(name+".btree"), keyCol)
	if err != nil {
		return nil, err
	}
	return &Relation{
		name: name, schema: schema, keyCol: keyCol, kind: ClusteredBTree,
		bt: bt, pool: pool, disk: disk, secondaries: map[int]*Secondary{},
	}, nil
}

// NewHash creates a relation clustered by hashing on keyCol with the
// given number of primary bucket pages.
func NewHash(disk *storage.Disk, pool *storage.Pool, name string, schema *tuple.Schema, keyCol, buckets int) (*Relation, error) {
	if keyCol < 0 || keyCol >= len(schema.Cols) {
		return nil, fmt.Errorf("relation %s: key column %d out of range", name, keyCol)
	}
	hx, err := hashidx.New(pool, disk.Open(name+".hash"), keyCol, buckets)
	if err != nil {
		return nil, err
	}
	return &Relation{
		name: name, schema: schema, keyCol: keyCol, kind: ClusteredHash,
		hx: hx, pool: pool, disk: disk, secondaries: map[int]*Secondary{},
	}, nil
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Schema returns the relation schema.
func (r *Relation) Schema() *tuple.Schema { return r.schema }

// KeyCol returns the clustering column.
func (r *Relation) KeyCol() int { return r.keyCol }

// Kind returns the clustering access method.
func (r *Relation) Kind() Kind { return r.kind }

// Len returns the number of stored tuples.
func (r *Relation) Len() int {
	if r.kind == ClusteredBTree {
		return r.bt.Len()
	}
	return r.hx.Len()
}

// Pages returns the data pages occupied (leaf pages for a B+-tree,
// chain pages for hashing); unmetered.
func (r *Relation) Pages() int {
	if r.kind == ClusteredBTree {
		return r.bt.LeafPages()
	}
	return r.hx.Pages()
}

// IndexHeight returns the B+-tree height above the leaves (the paper's
// Hvi); 1 is reported for hash clustering (one directory probe).
func (r *Relation) IndexHeight() int {
	if r.kind == ClusteredBTree {
		return r.bt.Height() - 1
	}
	return 1
}

// Insert adds a tuple after schema validation, maintaining secondaries.
func (r *Relation) Insert(tp tuple.Tuple) error {
	if err := r.schema.Validate(tp.Vals); err != nil {
		return fmt.Errorf("relation %s: %w", r.name, err)
	}
	var err error
	if r.kind == ClusteredBTree {
		err = r.bt.Insert(tp)
	} else {
		err = r.hx.Insert(tp)
	}
	if err != nil {
		return err
	}
	for _, sec := range r.secondaries {
		if err := sec.bt.Insert(pointerEntry(tp, sec.col, r.keyCol)); err != nil {
			return err
		}
	}
	return nil
}

// Delete removes the tuple with the clustering-key value and id. The
// full tuple is returned so callers (HR, views) can record what was
// deleted.
func (r *Relation) Delete(keyVal tuple.Value, id uint64) (tuple.Tuple, bool, error) {
	tp, ok, err := r.Get(keyVal, id)
	if err != nil || !ok {
		return tuple.Tuple{}, ok, err
	}
	if r.kind == ClusteredBTree {
		_, err = r.bt.Delete(keyVal, id)
	} else {
		_, err = r.hx.Delete(keyVal, id)
	}
	if err != nil {
		return tuple.Tuple{}, false, err
	}
	for _, sec := range r.secondaries {
		if _, err := sec.bt.Delete(tp.Vals[sec.col], id); err != nil {
			return tuple.Tuple{}, false, err
		}
	}
	return tp, true, nil
}

// Get fetches the tuple with the clustering-key value and id.
func (r *Relation) Get(keyVal tuple.Value, id uint64) (tuple.Tuple, bool, error) {
	if r.kind == ClusteredBTree {
		return r.bt.Get(keyVal, id)
	}
	return r.hx.Get(keyVal, id)
}

// LookupKey returns all tuples whose clustering key equals v.
func (r *Relation) LookupKey(v tuple.Value) ([]tuple.Tuple, error) {
	if r.kind == ClusteredHash {
		return r.hx.Lookup(v)
	}
	it, err := r.bt.Scan(pred.PointRange(v))
	if err != nil {
		return nil, err
	}
	return drain(it)
}

// Scan returns tuples whose clustering-key value lies in rg, in key
// order. Only B+-tree relations support range scans.
func (r *Relation) Scan(rg *pred.Range) ([]tuple.Tuple, error) {
	if r.kind != ClusteredBTree {
		return nil, fmt.Errorf("relation %s: range scan requires B+-tree clustering", r.name)
	}
	it, err := r.bt.Scan(rg)
	if err != nil {
		return nil, err
	}
	return drain(it)
}

// Iter returns a streaming iterator over the clustering range (B+-tree
// only); rg nil means everything.
func (r *Relation) Iter(rg *pred.Range) (*btree.Iterator, error) {
	if r.kind != ClusteredBTree {
		return nil, fmt.Errorf("relation %s: iterator requires B+-tree clustering", r.name)
	}
	return r.bt.Scan(rg)
}

// ScanAll returns every tuple (sequential scan: every data page read).
func (r *Relation) ScanAll() ([]tuple.Tuple, error) {
	if r.kind == ClusteredBTree {
		it, err := r.bt.ScanAll()
		if err != nil {
			return nil, err
		}
		return drain(it)
	}
	return r.hx.ScanAll()
}

// IterBatches returns a columnar iterator over the clustering range
// (B+-tree only); rg nil means everything. Prune atoms let full scans
// skip pages whose zone maps disprove them (see btree.ScanBatches).
func (r *Relation) IterBatches(rg *pred.Range, prune []colpage.Atom) (*btree.BatchIterator, error) {
	if r.kind != ClusteredBTree {
		return nil, fmt.Errorf("relation %s: iterator requires B+-tree clustering", r.name)
	}
	return r.bt.ScanBatches(rg, prune)
}

// ScanAllBatches is ScanAll decoded straight into columnar batches of
// up to size rows, with identical page order and metered charges —
// minus any pages the prune atoms' zone maps disprove, which are
// skipped unread and reported in pruned.
func (r *Relation) ScanAllBatches(size int, prune []colpage.Atom) ([]*vec.Batch, int64, error) {
	if size < 1 {
		size = vec.DefaultBatchSize
	}
	if r.kind != ClusteredBTree {
		return r.hx.ScanAllBatches(size, prune)
	}
	it, err := r.bt.ScanBatches(nil, prune)
	if err != nil {
		return nil, 0, err
	}
	var out []*vec.Batch
	for !it.Done() {
		b := &vec.Batch{}
		if err := it.Fill(b, size); err != nil {
			return nil, 0, err
		}
		if b.NumRows() > 0 {
			out = append(out, b)
		}
	}
	return out, it.Pruned(), nil
}

// --- secondary indexes ----------------------------------------------------

// pointerEntry builds the secondary-index entry for tp: (indexed value,
// primary key value, id), with the entry's own id equal to the tuple's.
func pointerEntry(tp tuple.Tuple, col, keyCol int) tuple.Tuple {
	return tuple.New(tp.ID, tp.Vals[col], tp.Vals[keyCol])
}

// AddSecondary builds an unclustered index on col from the current
// contents. It is an error to index the clustering column (use the
// clustered index) or to index a column twice.
func (r *Relation) AddSecondary(col int) error {
	if col == r.keyCol {
		return fmt.Errorf("relation %s: column %d is the clustering key", r.name, col)
	}
	if _, dup := r.secondaries[col]; dup {
		return fmt.Errorf("relation %s: column %d already has a secondary index", r.name, col)
	}
	bt, err := btree.New(r.pool, r.disk.Open(fmt.Sprintf("%s.sec%d", r.name, col)), 0)
	if err != nil {
		return err
	}
	sec := &Secondary{col: col, bt: bt}
	all, err := r.ScanAll()
	if err != nil {
		return err
	}
	for _, tp := range all {
		if err := bt.Insert(pointerEntry(tp, col, r.keyCol)); err != nil {
			return err
		}
	}
	r.secondaries[col] = sec
	return nil
}

// HasSecondary reports whether col has a secondary index.
func (r *Relation) HasSecondary(col int) bool {
	_, ok := r.secondaries[col]
	return ok
}

// LookupSecondary finds tuples whose col value lies in rg via the
// unclustered index: a range scan of pointer entries followed by one
// clustered fetch per pointer — the per-tuple random I/O the paper's
// unclustered plan pays.
func (r *Relation) LookupSecondary(col int, rg *pred.Range) ([]tuple.Tuple, error) {
	sec, ok := r.secondaries[col]
	if !ok {
		return nil, fmt.Errorf("relation %s: no secondary index on column %d", r.name, col)
	}
	it, err := sec.bt.Scan(rg)
	if err != nil {
		return nil, err
	}
	ptrs, err := drain(it)
	if err != nil {
		return nil, err
	}
	out := make([]tuple.Tuple, 0, len(ptrs))
	for _, ptr := range ptrs {
		tp, found, err := r.Get(ptr.Vals[1], ptr.ID)
		if err != nil {
			return nil, err
		}
		if !found {
			return nil, fmt.Errorf("relation %s: dangling secondary pointer id %d", r.name, ptr.ID)
		}
		out = append(out, tp)
	}
	return out, nil
}

func drain(it *btree.Iterator) ([]tuple.Tuple, error) {
	var out []tuple.Tuple
	for {
		tp, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, tp)
	}
}
