package relation

import (
	"fmt"
	"sort"

	"viewmat/internal/btree"
	"viewmat/internal/hashidx"
	"viewmat/internal/storage"
	"viewmat/internal/tuple"
)

// Meta is a relation's persistent metadata: the access-method state
// needed to reopen it over an existing disk image. Schemas travel
// separately (they contain typed values the caller serializes).
type Meta struct {
	Kind        Kind
	KeyCol      int
	BTree       btree.Meta         // when Kind == ClusteredBTree
	Hash        hashidx.Meta       // when Kind == ClusteredHash
	Secondaries map[int]btree.Meta // column → secondary-index metadata
}

// Meta returns the relation's persistent metadata.
func (r *Relation) Meta() Meta {
	m := Meta{Kind: r.kind, KeyCol: r.keyCol, Secondaries: map[int]btree.Meta{}}
	if r.kind == ClusteredBTree {
		m.BTree = r.bt.Meta()
	} else {
		m.Hash = r.hx.Meta()
	}
	for col, sec := range r.secondaries {
		m.Secondaries[col] = sec.bt.Meta()
	}
	return m
}

// Open reattaches a relation to its files on a restored disk.
func Open(disk *storage.Disk, pool *storage.Pool, name string, schema *tuple.Schema, m Meta) (*Relation, error) {
	if m.KeyCol < 0 || m.KeyCol >= len(schema.Cols) {
		return nil, fmt.Errorf("relation %s: metadata key column %d out of range", name, m.KeyCol)
	}
	r := &Relation{
		name: name, schema: schema, keyCol: m.KeyCol, kind: m.Kind,
		pool: pool, disk: disk, secondaries: map[int]*Secondary{},
	}
	var err error
	switch m.Kind {
	case ClusteredBTree:
		r.bt, err = btree.Open(pool, disk.Open(name+".btree"), m.KeyCol, m.BTree)
	case ClusteredHash:
		r.hx, err = hashidx.Open(pool, disk.Open(name+".hash"), m.KeyCol, m.Hash)
	default:
		return nil, fmt.Errorf("relation %s: unknown kind %d", name, m.Kind)
	}
	if err != nil {
		return nil, err
	}
	cols := make([]int, 0, len(m.Secondaries))
	for col := range m.Secondaries {
		cols = append(cols, col)
	}
	sort.Ints(cols)
	for _, col := range cols {
		bt, err := btree.Open(pool, disk.Open(fmt.Sprintf("%s.sec%d", name, col)), 0, m.Secondaries[col])
		if err != nil {
			return nil, err
		}
		r.secondaries[col] = &Secondary{col: col, bt: bt}
	}
	return r, nil
}
