package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"viewmat/internal/storage"
)

// ErrNoSnapshot is returned by Latest when the store holds no complete
// snapshot (a fresh device, or one whose only write was torn).
var ErrNoSnapshot = errors.New("wal: no snapshot")

// SnapshotStore keeps engine snapshots on a Device using the same
// checksummed frame format as the log, with an 8-byte sequence number
// prefixed to each payload. It is append-only: a new snapshot goes
// after the previous one and only becomes the recovery root once its
// frame is fully synced, so a crash mid-checkpoint leaves the prior
// snapshot intact and Latest still finds it. The log is truncated only
// after the snapshot frame is durable.
type SnapshotStore struct {
	log *Log
}

// OpenSnapshotStore opens (and, like OpenLog, tail-repairs) a snapshot
// store on dev.
func OpenSnapshotStore(dev storage.Device) (*SnapshotStore, error) {
	l, err := OpenLog(dev)
	if err != nil {
		return nil, err
	}
	return &SnapshotStore{log: l}, nil
}

// Append durably stores a snapshot tagged with seq: frames it, appends
// after the previous snapshot, and syncs before returning.
func (s *SnapshotStore) Append(seq uint64, snapshot []byte) error {
	payload := make([]byte, 8+len(snapshot))
	binary.LittleEndian.PutUint64(payload[:8], seq)
	copy(payload[8:], snapshot)
	return s.log.AppendSync(payload)
}

// Latest returns the newest fully-written snapshot and its sequence
// number, or ErrNoSnapshot if none survived.
func (s *SnapshotStore) Latest() (seq uint64, snapshot []byte, err error) {
	r, err := NewReader(s.log.dev)
	if err != nil {
		return 0, nil, err
	}
	var last []byte
	for {
		payload, err := r.Next()
		if err != nil {
			// A torn or corrupt tail is the expected residue of a crash
			// mid-checkpoint; the previous snapshot (if any) still wins.
			if errors.Is(err, io.EOF) || errors.Is(err, ErrTorn) || errors.Is(err, ErrCorrupt) {
				break
			}
			return 0, nil, err
		}
		last = payload
	}
	if last == nil {
		return 0, nil, ErrNoSnapshot
	}
	if len(last) < 8 {
		return 0, nil, fmt.Errorf("%w: snapshot frame of %d bytes lacks a sequence number", ErrCorrupt, len(last))
	}
	return binary.LittleEndian.Uint64(last[:8]), last[8:], nil
}
