package wal

import (
	"errors"
	"io"
	"testing"

	"viewmat/internal/storage"
)

// FuzzWALReader feeds arbitrary bytes to the frame reader and checks
// the contract garbage can never break: no panics, every yielded
// payload re-verifies against its own checksum, the reader terminates
// (offsets strictly advance), and it ends in exactly one of EOF, torn
// or corrupt.
func FuzzWALReader(f *testing.F) {
	// Seed with a valid log, a torn tail, zero fill, and junk.
	dev := storage.NewFaultDisk()
	l, err := OpenLog(dev)
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range [][]byte{[]byte("seed-one"), []byte("seed-two")} {
		if err := l.AppendSync(p); err != nil {
			f.Fatal(err)
		}
	}
	img := make([]byte, l.Offset())
	if _, err := dev.ReadAt(img, 0); err != nil && !errors.Is(err, io.EOF) {
		f.Fatal(err)
	}
	f.Add(img)
	f.Add(img[:len(img)-3])
	f.Add(append(append([]byte(nil), img...), 0, 0, 0, 0, 0))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 1, 2, 3, 4})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(storage.NewFaultDiskBytes(data))
		if err != nil {
			t.Fatalf("NewReader: %v", err)
		}
		prev := r.Offset()
		for {
			payload, err := r.Next()
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, ErrTorn) && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("unexpected terminal error: %v", err)
				}
				if r.Offset() < prev {
					t.Fatalf("offset moved backward on error: %d -> %d", prev, r.Offset())
				}
				return
			}
			if len(payload) == 0 {
				t.Fatal("reader yielded an empty record")
			}
			if r.Offset() <= prev {
				t.Fatalf("offset did not advance: %d -> %d", prev, r.Offset())
			}
			// Re-verify the yielded payload against the stored checksum;
			// a mismatch here would mean the reader returned corrupt data.
			start := prev
			var hdr [8]byte
			if n := copy(hdr[:], data[start:]); n != 8 {
				t.Fatalf("record at %d has no full header", start)
			}
			if got := Checksum(payload); got != uint32(hdr[4])|uint32(hdr[5])<<8|uint32(hdr[6])<<16|uint32(hdr[7])<<24 {
				t.Fatalf("record at %d fails its checksum after read", start)
			}
			prev = r.Offset()
		}
	})
}
