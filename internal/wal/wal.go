// Package wal implements the durability substrate of the viewmat
// engine: a checksummed, length-prefixed write-ahead log and an
// append-only snapshot store, both over a storage.Device (a real file
// or a fault-injecting in-memory disk).
//
// The frame format is the shared codec of internal/frame (also spoken
// by the network protocol):
//
//	[4B little-endian payload length][4B CRC-32C of payload][payload]
//
// Replay reads frames in order and stops at the first sign of trouble:
// a clean end (device boundary or zero fill), a torn record (length
// runs past the device), or a corrupt record (checksum mismatch or an
// absurd length). Torn and corrupt tails are the expected residue of a
// crash mid-append; everything before them was synced and is valid.
// Empty payloads are rejected on append so a zeroed region can never
// masquerade as a record (length 0 + CRC 0 is the zero-fill pattern).
package wal

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"viewmat/internal/frame"
	"viewmat/internal/storage"
)

const (
	headerSize = frame.HeaderSize
	// MaxRecordSize caps a single record; longer lengths in a header
	// are treated as corruption, which also keeps a fuzzer (or a bad
	// disk) from tricking the reader into a giant allocation.
	MaxRecordSize = 1 << 26
)

var (
	// ErrTorn marks a record cut short by the end of the device — the
	// tail a crash mid-append leaves behind. Everything before it is
	// valid.
	ErrTorn = errors.New("wal: torn record")
	// ErrCorrupt marks a record whose checksum does not match its
	// payload (or whose length field is impossible).
	ErrCorrupt = errors.New("wal: corrupt record")
)

// Checksum returns the CRC-32C the frame codec uses; exported so tests
// and fuzzers can verify records independently.
func Checksum(payload []byte) uint32 { return frame.Checksum(payload) }

// Log is an appender of checksummed frames on a Device. Appends are
// buffered by the device until Sync; AppendSync is the commit barrier.
// Safe for concurrent use.
type Log struct {
	mu  sync.Mutex
	dev storage.Device
	off int64
}

// OpenLog opens a log for appending, scanning existing frames to find
// the end of the valid prefix. A torn or corrupt tail (crash residue)
// is truncated away so stale bytes can never follow a future append.
func OpenLog(dev storage.Device) (*Log, error) {
	r, err := NewReader(dev)
	if err != nil {
		return nil, err
	}
	for {
		_, err := r.Next()
		if err == nil {
			continue
		}
		if errors.Is(err, io.EOF) {
			break
		}
		if errors.Is(err, ErrTorn) || errors.Is(err, ErrCorrupt) {
			if err := dev.Truncate(r.Offset()); err != nil {
				return nil, fmt.Errorf("wal: truncating damaged tail: %w", err)
			}
			if err := dev.Sync(); err != nil {
				return nil, err
			}
			break
		}
		return nil, err
	}
	return &Log{dev: dev, off: r.Offset()}, nil
}

// Append writes one frame at the tail without syncing.
func (l *Log) Append(payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("wal: empty payload")
	}
	if len(payload) > MaxRecordSize {
		return fmt.Errorf("wal: payload of %d bytes exceeds max %d", len(payload), MaxRecordSize)
	}
	f, err := frame.Encode(payload)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.dev.WriteAt(f, l.off); err != nil {
		return err
	}
	l.off += int64(len(f))
	return nil
}

// Sync hardens all appended frames.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dev.Sync()
}

// AppendSync appends one frame and syncs — the commit barrier.
func (l *Log) AppendSync(payload []byte) error {
	if err := l.Append(payload); err != nil {
		return err
	}
	return l.Sync()
}

// Reset truncates the log to empty (the checkpoint's log-truncation
// step; the snapshot is synced first, so nothing here is needed).
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.dev.Truncate(0); err != nil {
		return err
	}
	if err := l.dev.Sync(); err != nil {
		return err
	}
	l.off = 0
	return nil
}

// Offset returns the current tail offset in bytes.
func (l *Log) Offset() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.off
}

// Reader iterates the frames of a device from the start.
type Reader struct {
	dev  storage.Device
	off  int64
	size int64
}

// NewReader positions a reader at the head of the device.
func NewReader(dev storage.Device) (*Reader, error) {
	size, err := dev.Size()
	if err != nil {
		return nil, err
	}
	return &Reader{dev: dev, size: size}, nil
}

// Offset returns the byte offset of the next unread frame — after an
// error, the boundary where the valid prefix ends.
func (r *Reader) Offset() int64 { return r.off }

// Next returns the next record's payload. It returns io.EOF at a clean
// end (device boundary or zero fill), ErrTorn when a record runs past
// the device, and ErrCorrupt on a checksum or length violation. After
// any error the reader stays put: replay must stop, and Offset marks
// the end of the valid prefix.
func (r *Reader) Next() ([]byte, error) {
	rem := r.size - r.off
	if rem <= 0 {
		return nil, io.EOF
	}
	if rem < headerSize {
		tail := make([]byte, rem)
		if _, err := io.ReadFull(io.NewSectionReader(r.dev, r.off, rem), tail); err != nil {
			return nil, fmt.Errorf("%w: reading %d tail bytes: %v", ErrTorn, rem, err)
		}
		for _, b := range tail {
			if b != 0 {
				return nil, fmt.Errorf("%w: %d trailing bytes, no room for a header", ErrTorn, rem)
			}
		}
		return nil, io.EOF
	}
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(io.NewSectionReader(r.dev, r.off, headerSize), hdr); err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrTorn, err)
	}
	length, crc := frame.ParseHeader(hdr)
	if length == 0 && crc == 0 {
		return nil, io.EOF // zero fill: clean end
	}
	if length == 0 || length > MaxRecordSize {
		return nil, fmt.Errorf("%w: record length %d", ErrCorrupt, length)
	}
	if r.off+headerSize+int64(length) > r.size {
		return nil, fmt.Errorf("%w: record of %d bytes runs past device end", ErrTorn, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(io.NewSectionReader(r.dev, r.off+headerSize, int64(length)), payload); err != nil {
		return nil, fmt.Errorf("%w: reading payload: %v", ErrTorn, err)
	}
	if Checksum(payload) != crc {
		return nil, fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorrupt, r.off)
	}
	r.off += headerSize + int64(length)
	return payload, nil
}
