package wal

import (
	"os"
	"sync"
)

// FileDevice adapts an *os.File to storage.Device, with optional fault
// hooks so even the real-file backend can be driven through injected
// WriteAt/Sync failures in tests. Hooks fire before the underlying
// call; a non-nil return suppresses it.
type FileDevice struct {
	f *os.File

	mu         sync.Mutex
	writeCalls int
	syncCalls  int
	failWrite  map[int]error
	failSync   map[int]error
}

// OpenFile opens (creating if needed) path as a FileDevice.
func OpenFile(path string) (*FileDevice, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return &FileDevice{f: f}, nil
}

// FailWriteAt makes the call-th WriteAt (1-based) fail with err without
// touching the file.
func (d *FileDevice) FailWriteAt(call int, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failWrite == nil {
		d.failWrite = map[int]error{}
	}
	d.failWrite[call] = err
}

// FailSync makes the call-th Sync (1-based) fail with err without
// syncing the file.
func (d *FileDevice) FailSync(call int, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failSync == nil {
		d.failSync = map[int]error{}
	}
	d.failSync[call] = err
}

func (d *FileDevice) ReadAt(p []byte, off int64) (int, error) { return d.f.ReadAt(p, off) }

func (d *FileDevice) WriteAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	d.writeCalls++
	err, injected := d.failWrite[d.writeCalls]
	d.mu.Unlock()
	if injected {
		return 0, err
	}
	return d.f.WriteAt(p, off)
}

func (d *FileDevice) Sync() error {
	d.mu.Lock()
	d.syncCalls++
	err, injected := d.failSync[d.syncCalls]
	d.mu.Unlock()
	if injected {
		return err
	}
	return d.f.Sync()
}

func (d *FileDevice) Truncate(size int64) error { return d.f.Truncate(size) }

func (d *FileDevice) Size() (int64, error) {
	st, err := d.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Close closes the underlying file.
func (d *FileDevice) Close() error { return d.f.Close() }
