package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"testing"

	"viewmat/internal/storage"
)

// readAll drains a reader, returning the payloads and the terminating
// error.
func readAll(t *testing.T, dev storage.Device) ([][]byte, error) {
	t.Helper()
	r, err := NewReader(dev)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	var out [][]byte
	for {
		p, err := r.Next()
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
}

func TestLogRoundTrip(t *testing.T) {
	dev := storage.NewFaultDisk()
	l, err := OpenLog(dev)
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	want := [][]byte{[]byte("one"), []byte("two two"), {0x00, 0xff, 0x00}}
	for _, p := range want {
		if err := l.AppendSync(p); err != nil {
			t.Fatalf("AppendSync: %v", err)
		}
	}
	got, err := readAll(t, dev)
	if !errors.Is(err, io.EOF) {
		t.Fatalf("terminating error = %v, want EOF", err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestAppendRejectsEmptyAndOversized(t *testing.T) {
	l, err := OpenLog(storage.NewFaultDisk())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(nil); err == nil {
		t.Error("Append(nil) succeeded; empty payloads would alias the zero-fill end marker")
	}
	if err := l.Append(make([]byte, MaxRecordSize+1)); err == nil {
		t.Error("oversized Append succeeded")
	}
}

// TestTornTailStopsReplay cuts a record at every possible byte boundary
// and checks the reader yields exactly the whole records before the cut
// and then ErrTorn (or clean EOF at frame boundaries / zero-filled
// remainders).
func TestTornTailStopsReplay(t *testing.T) {
	build := func() ([]byte, []int) {
		dev := storage.NewFaultDisk()
		l, _ := OpenLog(dev)
		var ends []int
		for _, p := range [][]byte{[]byte("alpha"), []byte("beta-beta"), []byte("g")} {
			if err := l.AppendSync(p); err != nil {
				t.Fatal(err)
			}
			ends = append(ends, int(l.Offset()))
		}
		img := make([]byte, ends[len(ends)-1])
		if _, err := dev.ReadAt(img, 0); err != nil && !errors.Is(err, io.EOF) {
			t.Fatal(err)
		}
		return img, ends
	}
	img, ends := build()
	for cut := 0; cut <= len(img); cut++ {
		dev := storage.NewFaultDiskBytes(img[:cut])
		got, err := readAll(t, dev)
		wantWhole := 0
		for _, e := range ends {
			if cut >= e {
				wantWhole++
			}
		}
		if len(got) != wantWhole {
			t.Fatalf("cut %d: %d records, want %d", cut, len(got), wantWhole)
		}
		atBoundary := cut == 0
		for _, e := range ends {
			if cut == e {
				atBoundary = true
			}
		}
		if atBoundary {
			if !errors.Is(err, io.EOF) {
				t.Errorf("cut %d (frame boundary): err = %v, want EOF", cut, err)
			}
		} else if !errors.Is(err, ErrTorn) {
			t.Errorf("cut %d: err = %v, want ErrTorn", cut, err)
		}
	}
}

func TestZeroFillIsCleanEnd(t *testing.T) {
	dev := storage.NewFaultDisk()
	l, _ := OpenLog(dev)
	if err := l.AppendSync([]byte("record")); err != nil {
		t.Fatal(err)
	}
	// A pre-allocated file tail: zero bytes after the last record.
	for _, pad := range []int{1, 7, 8, 64} {
		padded := storage.NewFaultDiskBytes(nil)
		img := make([]byte, l.Offset())
		if _, err := dev.ReadAt(img, 0); err != nil && !errors.Is(err, io.EOF) {
			t.Fatal(err)
		}
		if _, err := padded.WriteAt(append(img, make([]byte, pad)...), 0); err != nil {
			t.Fatal(err)
		}
		got, err := readAll(t, padded)
		if !errors.Is(err, io.EOF) {
			t.Errorf("pad %d: err = %v, want EOF", pad, err)
		}
		if len(got) != 1 {
			t.Errorf("pad %d: %d records, want 1", pad, len(got))
		}
	}
}

func TestCorruptRecordStopsReplay(t *testing.T) {
	mk := func() (*storage.FaultDisk, int64) {
		dev := storage.NewFaultDisk()
		l, _ := OpenLog(dev)
		for _, p := range [][]byte{[]byte("first"), []byte("second")} {
			if err := l.AppendSync(p); err != nil {
				t.Fatal(err)
			}
		}
		return dev, l.Offset()
	}

	t.Run("flipped payload byte", func(t *testing.T) {
		dev, _ := mk()
		// Corrupt a payload byte of the second record (offset 8+5+8 = 21).
		if _, err := dev.WriteAt([]byte{0xee}, 22); err != nil {
			t.Fatal(err)
		}
		got, err := readAll(t, dev)
		if len(got) != 1 || !errors.Is(err, ErrCorrupt) {
			t.Errorf("got %d records, err %v; want 1 record then ErrCorrupt", len(got), err)
		}
	})
	t.Run("absurd length", func(t *testing.T) {
		dev, _ := mk()
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], MaxRecordSize+1)
		if _, err := dev.WriteAt(hdr[:], 13); err != nil { // second record's length field
			t.Fatal(err)
		}
		got, err := readAll(t, dev)
		if len(got) != 1 || !errors.Is(err, ErrCorrupt) {
			t.Errorf("got %d records, err %v; want 1 record then ErrCorrupt", len(got), err)
		}
	})
}

// TestOpenLogRepairsTail checks OpenLog truncates crash residue so a
// new append never leaves stale bytes after itself.
func TestOpenLogRepairsTail(t *testing.T) {
	dev := storage.NewFaultDisk()
	l, _ := OpenLog(dev)
	if err := l.AppendSync([]byte("keep")); err != nil {
		t.Fatal(err)
	}
	kept := l.Offset()
	// Simulate a torn append: half a frame of garbage.
	if _, err := dev.WriteAt([]byte{9, 0, 0, 0, 1, 2}, kept); err != nil {
		t.Fatal(err)
	}
	if err := dev.Sync(); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenLog(dev)
	if err != nil {
		t.Fatalf("OpenLog over torn tail: %v", err)
	}
	if l2.Offset() != kept {
		t.Fatalf("reopened offset %d, want %d", l2.Offset(), kept)
	}
	if err := l2.AppendSync([]byte("after")); err != nil {
		t.Fatal(err)
	}
	got, err := readAll(t, dev)
	if !errors.Is(err, io.EOF) || len(got) != 2 || string(got[1]) != "after" {
		t.Fatalf("after repair: records %q err %v", got, err)
	}
}

func TestSnapshotStoreLatestSurvivesTornCheckpoint(t *testing.T) {
	dev := storage.NewFaultDisk()
	s, err := OpenSnapshotStore(dev)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Latest(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("Latest on empty store: %v, want ErrNoSnapshot", err)
	}
	if err := s.Append(3, []byte("snap-a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(9, []byte("snap-b")); err != nil {
		t.Fatal(err)
	}
	seq, body, err := s.Latest()
	if err != nil || seq != 9 || string(body) != "snap-b" {
		t.Fatalf("Latest = (%d, %q, %v), want (9, snap-b, nil)", seq, body, err)
	}
	// Tear the tail of a third snapshot: the second must still win.
	size, _ := dev.Size()
	if _, err := dev.WriteAt([]byte{200, 1, 0, 0, 7, 7, 7, 7, 1, 2, 3}, size); err != nil {
		t.Fatal(err)
	}
	if err := dev.Sync(); err != nil {
		t.Fatal(err)
	}
	seq, body, err = s.Latest()
	if err != nil || seq != 9 || string(body) != "snap-b" {
		t.Fatalf("Latest after torn checkpoint = (%d, %q, %v), want (9, snap-b, nil)", seq, body, err)
	}
}

// TestFileDevice exercises the real-file backend end to end, including
// its injectable failures.
func TestFileDevice(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	dev, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	l, err := OpenLog(dev)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.AppendSync([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Reopen and verify the valid prefix survives the file round trip.
	dev2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer dev2.Close()
	got, err := readAll(t, dev2)
	if !errors.Is(err, io.EOF) || len(got) != 5 {
		t.Fatalf("reopened file: %d records, err %v", len(got), err)
	}

	boom := errors.New("boom")
	dev2.FailWriteAt(1, boom)
	l2, err := OpenLog(dev2)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append([]byte("x")); !errors.Is(err, boom) {
		t.Fatalf("injected write failure: %v", err)
	}
	dev2.FailSync(1, boom)
	if err := l2.AppendSync([]byte("y")); !errors.Is(err, boom) {
		t.Fatalf("injected sync failure: %v", err)
	}
}
