// Package figures regenerates the data behind every figure and table
// in the paper's evaluation: cost-vs-parameter series (Figures 1, 5,
// 8), best-algorithm region maps (Figures 2–4, 6–7), equal-cost curves
// (Figure 9), the §3.5 EMP-DEPT special case, and the §3.1 parameter
// table. cmd/figures prints them; bench_test.go regenerates them under
// testing.B; EXPERIMENTS.md records them against the paper.
package figures

import (
	"fmt"

	"viewmat/internal/costmodel"
)

// Series is one labeled curve.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a regenerated figure or table.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string

	Series  []Series                // cost curves (Figures 1, 5, 8, 9)
	Regions []costmodel.RegionPoint // region maps (Figures 2-4, 6-7)
	Rows    [][]string              // tabular data (params, empdept)
	Header  []string

	Notes []string
}

// pGrid returns the update-probability sweep used by the P-axis
// figures.
func pGrid(steps int) []float64 {
	out := make([]float64, 0, steps)
	for i := 1; i < steps; i++ {
		out = append(out, float64(i)/float64(steps))
	}
	return out
}

// Figure1 — Model 1: total cost vs P for deferred, immediate,
// clustered and unclustered (sequential is off the scale).
func Figure1(base costmodel.Params) *Figure {
	ps := pGrid(40)
	algs := []struct {
		name string
		fn   func(costmodel.Params) float64
	}{
		{"deferred", costmodel.TotalDeferred1},
		{"immediate", costmodel.TotalImmediate1},
		{"clustered", costmodel.TotalClustered},
		{"unclustered", costmodel.TotalUnclustered},
	}
	fig := &Figure{
		ID:     "1",
		Title:  "Model 1: average cost per query vs P",
		XLabel: "P (probability an operation is an update)",
		YLabel: "cost (ms)",
		Notes: []string{
			"sequential omitted (off the scale, = " +
				fmt.Sprintf("%.0f ms)", costmodel.TotalSequential(base)),
		},
	}
	for _, a := range algs {
		s := Series{Name: a.name}
		for _, pv := range ps {
			s.X = append(s.X, pv)
			s.Y = append(s.Y, a.fn(base.WithP(pv)))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// regionFigure builds a best-algorithm region map figure.
func regionFigure(id, title string, base costmodel.Params, costs func(costmodel.Params) map[costmodel.Algorithm]float64, notes ...string) *Figure {
	return &Figure{
		ID:      id,
		Title:   title,
		XLabel:  "P",
		YLabel:  "f",
		Regions: costmodel.RegionMap(base, costs, 24, 24),
		Notes:   notes,
	}
}

// Figure2 — Model 1 regions, fv = .1.
func Figure2(base costmodel.Params) *Figure {
	base.FV = 0.1
	return regionFigure("2", "Model 1: best algorithm, f vs P (fv=.1)", base, costmodel.Model1Costs)
}

// Figure3 — Model 1 regions, fv = .01.
func Figure3(base costmodel.Params) *Figure {
	base.FV = 0.01
	return regionFigure("3", "Model 1: best algorithm, f vs P (fv=.01)", base, costmodel.Model1Costs)
}

// Figure4 — Model 1 regions with C3 = 2, fv = .1.
func Figure4(base costmodel.Params) *Figure {
	base.FV = 0.1
	base.C3 = 2
	return regionFigure("4", "Model 1: best algorithm, f vs P (C3=2, fv=.1)", base, costmodel.Model1Costs,
		"doubling C3 opens a deferred-over-immediate region; see EXPERIMENTS.md for the overall-best comparison")
}

// Figure5 — Model 2: total cost vs P for deferred, immediate, loopjoin.
func Figure5(base costmodel.Params) *Figure {
	ps := pGrid(40)
	algs := []struct {
		name string
		fn   func(costmodel.Params) float64
	}{
		{"deferred", costmodel.TotalDeferred2},
		{"immediate", costmodel.TotalImmediate2},
		{"loopjoin", costmodel.TotalLoopJoin},
	}
	fig := &Figure{
		ID:     "5",
		Title:  "Model 2: average cost per query vs P",
		XLabel: "P",
		YLabel: "cost (ms)",
	}
	for _, a := range algs {
		s := Series{Name: a.name}
		for _, pv := range ps {
			s.X = append(s.X, pv)
			s.Y = append(s.Y, a.fn(base.WithP(pv)))
		}
		fig.Series = append(fig.Series, s)
	}
	if cross, ok := costmodel.CrossoverP(base, costmodel.Model2Costs, costmodel.AlgLoopJoin, costmodel.AlgImmediate, 0.5, 0.999); ok {
		fig.Notes = append(fig.Notes, fmt.Sprintf("loopjoin overtakes immediate at P ≈ %.3f", cross))
	}
	return fig
}

// Figure6 — Model 2 regions, fv = .1.
func Figure6(base costmodel.Params) *Figure {
	base.FV = 0.1
	return regionFigure("6", "Model 2: best algorithm, f vs P (fv=.1)", base, costmodel.Model2Costs)
}

// Figure7 — Model 2 regions, fv = .01.
func Figure7(base costmodel.Params) *Figure {
	base.FV = 0.01
	return regionFigure("7", "Model 2: best algorithm, f vs P (fv=.01)", base, costmodel.Model2Costs)
}

// Figure8 — Model 3: cost vs l for deferred, immediate and clustered
// recomputation.
func Figure8(base costmodel.Params) *Figure {
	ls := []float64{1, 2, 5, 10, 25, 50, 100, 200, 300, 400, 500}
	algs := []struct {
		name string
		fn   func(costmodel.Params) float64
	}{
		{"deferred", costmodel.TotalDeferred3},
		{"immediate", costmodel.TotalImmediate3},
		{"clustered (recompute)", costmodel.TotalRecompute3},
	}
	fig := &Figure{
		ID:     "8",
		Title:  "Model 3: average cost of an aggregate query vs l",
		XLabel: "l (tuples modified per transaction)",
		YLabel: "cost (ms)",
		Notes:  []string{"the significant region is small l, where maintenance costs a few percent of recomputation"},
	}
	for _, a := range algs {
		s := Series{Name: a.name}
		for _, l := range ls {
			p := base
			p.L = l
			s.X = append(s.X, l)
			s.Y = append(s.Y, a.fn(p))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Figure9 — Model 3: equal-cost curves (P vs l) between immediate
// aggregate maintenance and clustered recomputation, one curve per f.
// Standard processing wins above a curve; maintenance wins below.
func Figure9(base costmodel.Params) *Figure {
	fs := []float64{0.01, 0.05, 0.1, 0.5, 1.0}
	ls := []float64{1, 2, 5, 10, 25, 50, 100, 200, 400, 800}
	fig := &Figure{
		ID:     "9",
		Title:  "Model 3: equal-cost curves of immediate maintenance vs clustered recomputation",
		XLabel: "l",
		YLabel: "P at equal cost",
		Notes:  []string{"recomputation wins above each curve; immediate maintenance wins below"},
	}
	for _, f := range fs {
		p := base
		p.F = f
		s := Series{Name: fmt.Sprintf("f=%g", f)}
		for _, l := range ls {
			cross, ok := costmodel.EqualCostP(p, l)
			if !ok {
				// Maintenance dominates across all P at this l; the
				// curve sits at P = 1.
				cross = 1
			}
			s.X = append(s.X, l)
			s.Y = append(s.Y, cross)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// FigureE1 — extension: the Model-1 best-algorithm map with all five
// strategies, including snapshot (at the given refresh period, buying
// cost with staleness) and recompute-on-demand. Not in the paper; it
// answers the natural follow-up question of where the intro's other
// two mechanisms would win.
func FigureE1(base costmodel.Params, snapshotEvery float64) *Figure {
	costs := func(p costmodel.Params) map[costmodel.Algorithm]float64 {
		return costmodel.Model1CostsExtended(p, snapshotEvery)
	}
	fig := regionFigure("E1",
		fmt.Sprintf("Extension: Model 1 best algorithm with snapshot (every %g txns) and recompute-on-demand", snapshotEvery),
		base, costs,
		"snapshot buys its region with staleness of up to its period")
	return fig
}

// EmpDeptFigure — the §3.5 special case: a large join view queried one
// tuple at a time. Reports the cost of each strategy over P and the
// crossover below which materialization would win.
func EmpDeptFigure() *Figure {
	base := costmodel.EmpDept()
	fig := &Figure{
		ID:     "empdept",
		Title:  "§3.5 EMP-DEPT case: large join view, single-tuple queries (f=1, l=1, fv=1/N)",
		Header: []string{"P", "deferred", "immediate", "loopjoin", "best"},
	}
	for _, pv := range []float64{0.02, 0.05, 0.08, 0.1, 0.2, 0.5, 0.9} {
		p := base.WithP(pv)
		c := costmodel.Model2Costs(p)
		best, _ := costmodel.Best(c)
		fig.Rows = append(fig.Rows, []string{
			fmt.Sprintf("%.2f", pv),
			fmt.Sprintf("%.1f", c[costmodel.AlgDeferred]),
			fmt.Sprintf("%.1f", c[costmodel.AlgImmediate]),
			fmt.Sprintf("%.1f", c[costmodel.AlgLoopJoin]),
			string(best),
		})
	}
	if cross, ok := costmodel.CrossoverP(base, costmodel.Model2Costs, costmodel.AlgLoopJoin, costmodel.AlgImmediate, 0.001, 0.5); ok {
		fig.Notes = append(fig.Notes, fmt.Sprintf("query modification wins for P ≥ %.3f (paper reports ≈ .08)", cross))
	} else {
		fig.Notes = append(fig.Notes, "query modification wins for every P in (0,1)")
	}
	return fig
}

// ParamsTable — the §3.1 parameter table with the default settings.
func ParamsTable(p costmodel.Params) *Figure {
	fig := &Figure{
		ID:     "params",
		Title:  "§3.1 parameters and defaults",
		Header: []string{"parameter", "definition", "default"},
	}
	add := func(name, def string, v float64) {
		fig.Rows = append(fig.Rows, []string{name, def, fmt.Sprintf("%g", v)})
	}
	add("N", "tuples in relation", p.N)
	add("S", "bytes per tuple", p.S)
	add("B", "bytes per block", p.B)
	add("k", "update transactions", p.K)
	add("l", "tuples modified per transaction", p.L)
	add("q", "view queries", p.Q)
	add("n", "bytes per B+-tree index record", p.IdxRec)
	add("f", "view predicate selectivity", p.F)
	add("fv", "fraction of view retrieved per query", p.FV)
	add("fR2", "size of R2 as a fraction of R1", p.FR2)
	add("C1", "ms to screen a record", p.C1)
	add("C2", "ms per disk read/write", p.C2)
	add("C3", "ms per tuple per txn of A/D upkeep", p.C3)
	add("b", "derived: blocks = NS/B", p.Blocks())
	add("T", "derived: tuples per page = B/S", p.TuplesPerPage())
	add("u", "derived: tuples updated per query = kl/q", p.U())
	add("P", "derived: update probability = k/(k+q)", p.P())
	return fig
}

// All regenerates every figure/table at the paper's defaults.
func All() []*Figure {
	p := costmodel.Default()
	return []*Figure{
		ParamsTable(p),
		Figure1(p), Figure2(p), Figure3(p), Figure4(p),
		Figure5(p), Figure6(p), Figure7(p),
		EmpDeptFigure(),
		Figure8(p), Figure9(p),
		FigureE1(p, 10),
	}
}

// ByID returns the figure with the given id at default parameters.
func ByID(id string) (*Figure, error) {
	for _, f := range All() {
		if f.ID == id {
			return f, nil
		}
	}
	return nil, fmt.Errorf("figures: unknown figure %q", id)
}
