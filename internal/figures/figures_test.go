package figures

import (
	"testing"

	"viewmat/internal/costmodel"
)

func TestAllFiguresGenerate(t *testing.T) {
	figs := All()
	if len(figs) != 12 {
		t.Fatalf("All() produced %d figures, want 12", len(figs))
	}
	seen := map[string]bool{}
	for _, f := range figs {
		if seen[f.ID] {
			t.Errorf("duplicate figure id %q", f.ID)
		}
		seen[f.ID] = true
		if len(f.Series) == 0 && len(f.Regions) == 0 && len(f.Rows) == 0 {
			t.Errorf("figure %s has no data", f.ID)
		}
	}
	for _, id := range []string{"params", "1", "2", "3", "4", "5", "6", "7", "8", "9", "empdept", "E1"} {
		if !seen[id] {
			t.Errorf("missing figure %q", id)
		}
	}
}

func TestByID(t *testing.T) {
	f, err := ByID("5")
	if err != nil || f.ID != "5" {
		t.Errorf("ByID(5) = %v, %v", f, err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestFigure1SeriesShape(t *testing.T) {
	f := Figure1(costmodel.Default())
	if len(f.Series) != 4 {
		t.Fatalf("series = %d, want 4", len(f.Series))
	}
	for _, s := range f.Series {
		if len(s.X) != len(s.Y) || len(s.X) == 0 {
			t.Fatalf("series %s malformed", s.Name)
		}
	}
	// The clustered curve is flat in P; deferred grows with P.
	var clustered, deferred Series
	for _, s := range f.Series {
		switch s.Name {
		case "clustered":
			clustered = s
		case "deferred":
			deferred = s
		}
	}
	if clustered.Y[0] != clustered.Y[len(clustered.Y)-1] {
		t.Error("clustered curve should not depend on P")
	}
	if deferred.Y[len(deferred.Y)-1] <= deferred.Y[0] {
		t.Error("deferred curve should grow with P")
	}
}

func TestFigure5CrossoverNote(t *testing.T) {
	f := Figure5(costmodel.Default())
	if len(f.Notes) == 0 {
		t.Error("Figure 5 should report the loopjoin crossover")
	}
}

func TestFigure8MostSignificantRegion(t *testing.T) {
	f := Figure8(costmodel.Default())
	var imm, rec Series
	for _, s := range f.Series {
		switch s.Name {
		case "immediate":
			imm = s
		case "clustered (recompute)":
			rec = s
		}
	}
	// At l=1 maintenance is a small percentage of recomputation.
	if imm.Y[0] > rec.Y[0]/10 {
		t.Errorf("at l=1 immediate %v not ≪ recompute %v", imm.Y[0], rec.Y[0])
	}
}

func TestFigure9CurvesMonotone(t *testing.T) {
	f := Figure9(costmodel.Default())
	if len(f.Series) != 5 {
		t.Fatalf("curves = %d, want 5", len(f.Series))
	}
	for _, s := range f.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] > s.Y[i-1]+1e-9 {
				t.Errorf("curve %s not nonincreasing in l at i=%d (%v -> %v)", s.Name, i, s.Y[i-1], s.Y[i])
			}
		}
		for _, y := range s.Y {
			if y <= 0 || y > 1 {
				t.Errorf("curve %s has P=%v outside (0,1]", s.Name, y)
			}
		}
	}
}

func TestEmpDeptFigure(t *testing.T) {
	f := EmpDeptFigure()
	if len(f.Rows) == 0 || len(f.Notes) == 0 {
		t.Fatal("empdept figure incomplete")
	}
	// At P ≥ 0.2 the best column must read loopjoin.
	for _, row := range f.Rows {
		if row[0] >= "0.20" && row[4] != "loopjoin" {
			t.Errorf("P=%s best=%s, want loopjoin", row[0], row[4])
		}
	}
}

func TestParamsTableMatchesDefaults(t *testing.T) {
	f := ParamsTable(costmodel.Default())
	want := map[string]string{"N": "100000", "C2": "30", "f": "0.1", "b": "2500", "u": "25"}
	got := map[string]string{}
	for _, r := range f.Rows {
		got[r[0]] = r[2]
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("param %s = %q, want %q", k, got[k], v)
		}
	}
}
