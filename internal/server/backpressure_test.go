package server

import (
	"errors"
	"sync"
	"testing"
	"time"

	"viewmat/internal/client"
	"viewmat/internal/core"
)

// TestBackpressureShedsExactOverflow proves the admission contract
// deterministically: with the in-flight cap at K and 4K simultaneous
// requests, exactly K are admitted (and parked on the test hook) and
// exactly 3K are shed with ErrBusy immediately — none queue, none
// hang. After release and drain the engine's buffer pool holds no
// pinned frames.
func TestBackpressureShedsExactOverflow(t *testing.T) {
	const (
		k     = 8
		total = 4 * k
	)
	db := core.NewDatabase(testDBOpts())
	t.Cleanup(func() { db.Pool().AssertUnpinned(t) })
	srv, addr := startServer(t, db, Config{MaxInflight: k})

	arrived := make(chan struct{}, total)
	release := make(chan struct{})
	srv.setAdmitHoldForTest(func() {
		arrived <- struct{}{}
		<-release
	})

	results := make(chan error, total)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				results <- err
				return
			}
			defer c.Close()
			results <- c.Ping()
		}()
	}

	// Wait until the cap is exactly saturated...
	for i := 0; i < k; i++ {
		select {
		case <-arrived:
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d of %d requests reached the admission hold", i, k)
		}
	}

	// ...then every further request must be shed with ErrBusy, and
	// nothing may succeed while all K slots are parked.
	busy := 0
	for busy < total-k {
		select {
		case err := <-results:
			if !errors.Is(err, client.ErrBusy) {
				t.Fatalf("request finished with %v while the cap was saturated; want ErrBusy", err)
			}
			busy++
		case <-time.After(5 * time.Second):
			t.Fatalf("stalled with %d of %d busy responses; requests are queueing instead of shedding", busy, total-k)
		}
	}

	select {
	case extra := <-arrived:
		_ = extra
		t.Fatal("more than MaxInflight requests were admitted")
	default:
	}

	close(release)
	srv.setAdmitHoldForTest(nil)
	for i := 0; i < k; i++ {
		select {
		case err := <-results:
			if err != nil {
				t.Fatalf("admitted request failed after release: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("admitted request hung after release")
		}
	}
	wg.Wait()
}

// TestBusyIsRetryable: a shed request can simply be retried once load
// subsides — CodeBusy marks the request unexecuted.
func TestBusyIsRetryable(t *testing.T) {
	db := core.NewDatabase(testDBOpts())
	srv, addr := startServer(t, db, Config{MaxInflight: 1})

	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	srv.setAdmitHoldForTest(func() {
		entered <- struct{}{}
		<-gate
	})
	go func() {
		c := dialClient(t, addr)
		c.Ping()
	}()
	<-entered
	srv.setAdmitHoldForTest(nil)

	c := dialClient(t, addr)
	if err := c.Ping(); !errors.Is(err, client.ErrBusy) {
		t.Fatalf("want ErrBusy while slot is held, got %v", err)
	}
	close(gate)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := c.Ping(); err == nil {
			break
		} else if !errors.Is(err, client.ErrBusy) {
			t.Fatalf("retry failed with %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("retry never succeeded after slot release")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
