package server

import (
	"bytes"
	"encoding/binary"
	"net"
	"runtime"
	"testing"
	"time"

	"viewmat/internal/client"
	"viewmat/internal/core"
	"viewmat/internal/frame"
	"viewmat/internal/proto"
)

// fuzzSeedFrames builds representative hostile inputs: a valid frame,
// truncations, a CRC flip, an oversized length, and raw junk.
func fuzzSeedFrames(t testing.TB) [][]byte {
	var buf bytes.Buffer
	if err := proto.WriteRequest(&buf, &proto.Request{Op: proto.OpPing}); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-1] ^= 0xff // payload damage → CRC mismatch

	truncated := append([]byte(nil), valid[:len(valid)-3]...)

	huge := make([]byte, frame.HeaderSize)
	binary.LittleEndian.PutUint32(huge, 1<<31)

	return [][]byte{
		valid,
		corrupt,
		truncated,
		valid[:5], // torn header
		huge,
		[]byte("GET / HTTP/1.1\r\n\r\n"), // wrong protocol entirely
		{},
	}
}

// FuzzServerFrame feeds arbitrary bytes to the protocol decoder and to
// a live server socket. The invariants: the decoder returns typed
// errors and never panics, and a server that just ate a hostile frame
// still answers a well-formed client perfectly.
func FuzzServerFrame(f *testing.F) {
	for _, seed := range fuzzSeedFrames(f) {
		f.Add(seed)
	}

	db := core.NewDatabase(testDBOpts())
	_, addr := startServer(f, db, Config{MaxInflight: 8, ReadTimeout: 100 * time.Millisecond})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Decoder directly: any outcome but a panic is acceptable, and
		// an error must be one the connection loop classifies.
		if _, err := proto.ReadRequest(bytes.NewReader(data)); err != nil {
			_ = err.Error() // typed or wrapped — just must exist and format
		}

		// Live socket: write the junk, drain whatever comes back, then
		// prove the server is still healthy on a fresh connection.
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		conn.SetDeadline(time.Now().Add(time.Second))
		conn.Write(data)
		// One read is enough to let a response (if any) flush; the
		// server's short idle deadline reaps the connection either way.
		conn.Read(make([]byte, 512))
		conn.Close()

		c, err := client.Dial(addr)
		if err != nil {
			t.Fatalf("dial after junk: %v", err)
		}
		defer c.Close()
		if err := c.Ping(); err != nil {
			t.Fatalf("ping after junk: %v", err)
		}
	})
}

// TestDamagedFramesDoNotLeakGoroutines hammers a server with damaged
// streams and half-open connections, then requires the goroutine count
// to return to its pre-server baseline after shutdown — no reader or
// handler may outlive its connection.
func TestDamagedFramesDoNotLeakGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()

	db := core.NewDatabase(testDBOpts())
	srv, addr := startServer(t, db, Config{MaxInflight: 8, ReadTimeout: 200 * time.Millisecond})

	seeds := fuzzSeedFrames(t)
	for round := 0; round < 5; round++ {
		for _, seed := range seeds {
			conn, err := net.DialTimeout("tcp", addr, time.Second)
			if err != nil {
				t.Fatal(err)
			}
			conn.Write(seed)
			if round%2 == 0 {
				conn.Close() // half-open: reader must give up via its idle deadline
			} else {
				conn.SetDeadline(time.Now().Add(time.Second))
				buf := make([]byte, 256)
				for {
					if _, err := conn.Read(buf); err != nil {
						break
					}
				}
				conn.Close()
			}
		}
	}

	// A healthy request still works amid the wreckage.
	c := dialClient(t, addr)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	c.Close()

	srv.Kill()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
