package server

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"viewmat/internal/agg"
	"viewmat/internal/client"
	"viewmat/internal/core"
	"viewmat/internal/pred"
	"viewmat/internal/tuple"
)

// --- shared fixtures ---------------------------------------------------------

func testDBOpts() core.Options {
	return core.Options{PageSize: 512, PoolFrames: 64}
}

// startServer serves db on a kernel-chosen port and returns the
// server plus its address. Shutdown is registered as cleanup; tests
// that Kill() or Shutdown() themselves make the cleanup a no-op.
func startServer(t testing.TB, db *core.Database, cfg Config) (*Server, string) {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	srv := New(db, cfg)
	lis, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	t.Cleanup(func() {
		srv.Kill()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, lis.Addr().String()
}

func dialClient(t testing.TB, addr string) *client.Client {
	t.Helper()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// r(k INT, a INT, s STRING); r1(k INT, jv INT, p STRING) ⋈ r2(jv INT, info STRING).
func baseSchema() *tuple.Schema {
	return tuple.NewSchema(tuple.Col("k", tuple.Int), tuple.Col("a", tuple.Int), tuple.Col("s", tuple.String))
}

func joinSchemas() (*tuple.Schema, *tuple.Schema) {
	r1 := tuple.NewSchema(tuple.Col("k", tuple.Int), tuple.Col("jv", tuple.Int), tuple.Col("p", tuple.String))
	r2 := tuple.NewSchema(tuple.Col("jv", tuple.Int), tuple.Col("info", tuple.String))
	return r1, r2
}

func spDef(name string, lo, hi int64) core.Def {
	return core.Def{
		Name:      name,
		Kind:      core.SelectProject,
		Relations: []string{"r"},
		Pred: pred.New(
			pred.Cmp{Rel: 0, Col: 0, Op: pred.Ge, Val: tuple.I(lo)},
			pred.Cmp{Rel: 0, Col: 0, Op: pred.Lt, Val: tuple.I(hi)},
		),
		Project:    [][]int{{0, 2}},
		ViewKeyCol: 0,
	}
}

func sumDef(name string, lo, hi int64) core.Def {
	return core.Def{
		Name:      name,
		Kind:      core.Aggregate,
		Relations: []string{"r"},
		Pred: pred.New(
			pred.Cmp{Rel: 0, Col: 0, Op: pred.Ge, Val: tuple.I(lo)},
			pred.Cmp{Rel: 0, Col: 0, Op: pred.Lt, Val: tuple.I(hi)},
		),
		AggKind: agg.Sum,
		AggCol:  1,
	}
}

func joinViewDef(name string) core.Def {
	return core.Def{
		Name:      name,
		Kind:      core.Join,
		Relations: []string{"r1", "r2"},
		Pred: pred.New(
			pred.Cmp{Rel: 0, Col: 0, Op: pred.Lt, Val: tuple.I(1 << 20)},
			pred.JoinEq{LRel: 0, LCol: 1, RRel: 1, RCol: 0},
		),
		Project:    [][]int{{0, 2}, {1}},
		ViewKeyCol: 0,
	}
}

// --- deterministic per-client scripts ---------------------------------------

// A scriptOp mutates relation Rel. Delete/update target the Idx-th row
// of the client's pre-transaction live set for that relation, so the
// same script replays identically over the network and in-process: the
// live sets evolve purely from op order, never from engine ids.
type scriptOp struct {
	kind int // 0 insert, 1 delete, 2 update
	rel  string
	key  int64 // insert/update: new clustering key (within the client's space)
	a    int64
	s    string
	idx  int // delete/update: index into the pre-tx live set of rel
}

const (
	opInsert = iota
	opDelete
	opUpdate
)

type liveRow struct {
	key int64
	id  uint64
}

// genScript builds nTx transactions for a client owning keys
// [base, base+span). Only the live-set *sizes* are simulated here;
// both replays make identical structural decisions because they apply
// identical ops.
func genScript(seed int64, base, span int64, nTx int) [][]scriptOp {
	rng := rand.New(rand.NewSource(seed))
	liveR, liveR1 := 0, 0
	script := make([][]scriptOp, 0, nTx)
	for t := 0; t < nTx; t++ {
		nOps := 1 + rng.Intn(3)
		claimedR := map[int]bool{}
		liveRStart := liveR
		var ops []scriptOp
		for o := 0; o < nOps; o++ {
			key := base + rng.Int63n(span)
			roll := rng.Intn(10)
			switch {
			case roll < 2: // r1 insert feeds the immediate join view
				ops = append(ops, scriptOp{kind: opInsert, rel: "r1", key: key, a: rng.Int63n(8), s: fmt.Sprintf("p%d", key)})
				liveR1++
			case roll < 7 || liveRStart == 0 || len(claimedR) == liveRStart:
				ops = append(ops, scriptOp{kind: opInsert, rel: "r", key: key, a: rng.Int63n(1000), s: fmt.Sprintf("s%d", key%7)})
				liveR++
			default:
				idx := rng.Intn(liveRStart)
				for claimedR[idx] {
					idx = (idx + 1) % liveRStart
				}
				claimedR[idx] = true
				if roll < 9 {
					ops = append(ops, scriptOp{kind: opUpdate, rel: "r", key: key, a: rng.Int63n(1000), s: "u", idx: idx})
				} else {
					ops = append(ops, scriptOp{kind: opDelete, rel: "r", idx: idx})
					liveR--
				}
			}
		}
		script = append(script, ops)
	}
	return script
}

// applyBookkeeping folds one committed transaction into the live sets.
// ids carries the engine-assigned id of each insert and update, in op
// order — exactly what both client.Tx.Commit and core.Tx report.
func applyBookkeeping(ops []scriptOp, ids []uint64, live map[string][]liveRow) {
	deleted := map[int]bool{}
	updated := map[int]liveRow{}
	var inserts []struct {
		rel string
		row liveRow
	}
	idPos := 0
	for _, op := range ops {
		switch op.kind {
		case opInsert:
			inserts = append(inserts, struct {
				rel string
				row liveRow
			}{op.rel, liveRow{op.key, ids[idPos]}})
			idPos++
		case opDelete:
			deleted[op.idx] = true
		case opUpdate:
			updated[op.idx] = liveRow{op.key, ids[idPos]}
			idPos++
		}
	}
	next := live["r"][:0:0]
	for i, row := range live["r"] {
		if deleted[i] {
			continue
		}
		if nr, ok := updated[i]; ok {
			next = append(next, nr)
			continue
		}
		next = append(next, row)
	}
	live["r"] = next
	for _, ins := range inserts {
		live[ins.rel] = append(live[ins.rel], ins.row)
	}
}

// netRunner replays script transactions through a network client,
// carrying live-set bookkeeping across transactions.
type netRunner struct {
	c    *client.Client
	live map[string][]liveRow
}

func newNetRunner(c *client.Client) *netRunner {
	return &netRunner{c: c, live: map[string][]liveRow{}}
}

func (r *netRunner) runTx(ops []scriptOp) error {
	tx := r.c.Begin()
	for _, op := range ops {
		switch op.kind {
		case opInsert:
			tx.Insert(op.rel, tuple.I(op.key), tuple.I(op.a), tuple.S(op.s))
		case opDelete:
			row := r.live["r"][op.idx]
			tx.Delete("r", tuple.I(row.key), row.id)
		case opUpdate:
			row := r.live["r"][op.idx]
			tx.Update("r", tuple.I(row.key), row.id, tuple.I(op.key), tuple.I(op.a), tuple.S(op.s))
		}
	}
	ids, err := tx.Commit()
	if err != nil {
		return err
	}
	applyBookkeeping(ops, ids, r.live)
	return nil
}

// runScriptLocal replays a script directly against an in-process
// engine — the oracle side.
func runScriptLocal(db *core.Database, script [][]scriptOp) error {
	live := map[string][]liveRow{}
	for _, ops := range script {
		tx := db.Begin()
		var ids []uint64
		for _, op := range ops {
			switch op.kind {
			case opInsert:
				id, err := tx.Insert(op.rel, tuple.I(op.key), tuple.I(op.a), tuple.S(op.s))
				if err != nil {
					return err
				}
				ids = append(ids, id)
			case opDelete:
				row := live["r"][op.idx]
				if err := tx.Delete("r", tuple.I(row.key), row.id); err != nil {
					return err
				}
			case opUpdate:
				row := live["r"][op.idx]
				id, err := tx.Update("r", tuple.I(row.key), row.id, tuple.I(op.key), tuple.I(op.a), tuple.S(op.s))
				if err != nil {
					return err
				}
				ids = append(ids, id)
			}
		}
		if err := tx.Commit(); err != nil {
			return err
		}
		applyBookkeeping(ops, ids, live)
	}
	return nil
}

// --- catalog + state comparison ---------------------------------------------

// integCatalog installs the shared relations, join dimension rows, and
// the four views (one per maintenance model, plus an aggregate):
//
//	vsp   Deferred select-project over r, 0 ≤ k < half the key space
//	vagg  Deferred SUM(a) over the same range
//	vjoin Immediate join r1 ⋈ r2
//	qsp   QueryModification select-project over all of r
type catalogApplier interface {
	CreateRelationBTree(name string, schema *tuple.Schema, keyCol int) error
	CreateRelationHash(name string, schema *tuple.Schema, keyCol, buckets int) error
	CreateView(def core.Def, strategy core.Strategy) error
}

// localCatalog adapts *core.Database (whose create-relation methods
// also return the relation) to catalogApplier.
type localCatalog struct{ db *core.Database }

func (l localCatalog) CreateRelationBTree(name string, schema *tuple.Schema, keyCol int) error {
	_, err := l.db.CreateRelationBTree(name, schema, keyCol)
	return err
}
func (l localCatalog) CreateRelationHash(name string, schema *tuple.Schema, keyCol, buckets int) error {
	_, err := l.db.CreateRelationHash(name, schema, keyCol, buckets)
	return err
}
func (l localCatalog) CreateView(def core.Def, strategy core.Strategy) error {
	return l.db.CreateView(def, strategy)
}

func installCatalog(a catalogApplier, insertR2 func(j int64) error, totalKeys int64) error {
	if err := a.CreateRelationBTree("r", baseSchema(), 0); err != nil {
		return err
	}
	s1, s2 := joinSchemas()
	if err := a.CreateRelationBTree("r1", s1, 0); err != nil {
		return err
	}
	if err := a.CreateRelationHash("r2", s2, 0, 8); err != nil {
		return err
	}
	for j := int64(0); j < 8; j++ {
		if err := insertR2(j); err != nil {
			return err
		}
	}
	if err := a.CreateView(spDef("vsp", 0, totalKeys/2), core.Deferred); err != nil {
		return err
	}
	if err := a.CreateView(sumDef("vagg", 0, totalKeys/2), core.Deferred); err != nil {
		return err
	}
	if err := a.CreateView(joinViewDef("vjoin"), core.Immediate); err != nil {
		return err
	}
	return a.CreateView(spDef("qsp", 0, totalKeys), core.QueryModification)
}

func installCatalogNet(c *client.Client, totalKeys int64) error {
	return installCatalog(c, func(j int64) error {
		tx := c.Begin()
		tx.Insert("r2", tuple.I(j), tuple.S(fmt.Sprintf("info%d", j)))
		_, err := tx.Commit()
		return err
	}, totalKeys)
}

func installCatalogLocal(db *core.Database, totalKeys int64) error {
	return installCatalog(localCatalog{db}, func(j int64) error {
		tx := db.Begin()
		if _, err := tx.Insert("r2", tuple.I(j), tuple.S(fmt.Sprintf("info%d", j))); err != nil {
			return err
		}
		return tx.Commit()
	}, totalKeys)
}

func sortedKeys(rows [][]tuple.Value) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = tuple.Tuple{Vals: r}.ValueKey()
	}
	sort.Strings(out)
	return out
}

func resultRowsToVals(rows []core.ResultRow) [][]tuple.Value {
	out := make([][]tuple.Value, len(rows))
	for i, r := range rows {
		out[i] = r.Vals
	}
	return out
}

// netState reads the comparison state (all view contents + aggregate)
// through a client after RefreshAll.
func netState(t *testing.T, c *client.Client) map[string][]string {
	t.Helper()
	if err := c.RefreshAll(); err != nil {
		t.Fatal(err)
	}
	state := map[string][]string{}
	for _, v := range []string{"vsp", "vjoin", "qsp"} {
		rows, err := c.QueryView(v, nil)
		if err != nil {
			t.Fatalf("query %s: %v", v, err)
		}
		state[v] = sortedKeys(rows)
	}
	sum, ok, err := c.QueryAggregate("vagg")
	if err != nil {
		t.Fatal(err)
	}
	state["vagg"] = []string{fmt.Sprintf("%v/%v", sum, ok)}
	return state
}

// localState reads the same comparison state directly from an engine.
func localState(t *testing.T, db *core.Database) map[string][]string {
	t.Helper()
	if err := db.RefreshAll(); err != nil {
		t.Fatal(err)
	}
	state := map[string][]string{}
	for _, v := range []string{"vsp", "vjoin", "qsp"} {
		rows, err := db.QueryView(v, nil)
		if err != nil {
			t.Fatalf("query %s: %v", v, err)
		}
		state[v] = sortedKeys(resultRowsToVals(rows))
	}
	sum, ok, err := db.QueryAggregate("vagg")
	if err != nil {
		t.Fatal(err)
	}
	state["vagg"] = []string{fmt.Sprintf("%v/%v", sum, ok)}
	return state
}

func diffStates(t *testing.T, label string, got, want map[string][]string) {
	t.Helper()
	for _, v := range []string{"vsp", "vjoin", "qsp", "vagg"} {
		g, w := got[v], want[v]
		if len(g) != len(w) {
			t.Errorf("%s: %s has %d entries, oracle has %d", label, v, len(g), len(w))
			continue
		}
		for i := range g {
			if g[i] != w[i] {
				t.Errorf("%s: %s entry %d: %q vs oracle %q", label, v, i, g[i], w[i])
				break
			}
		}
	}
}

// --- the integration test ----------------------------------------------------

// TestIntegrationConcurrentClients is the tentpole's proof of
// correctness under concurrency: 16 clients run disjoint-key-space
// mixed workloads (inserts, deletes, updates, interleaved reads)
// against one served engine across all three maintenance models, and
// the final view contents must equal a serial in-process replay of
// the same scripts. Disjoint key spaces make the final logical state
// independent of interleaving, so the oracle is exact.
func TestIntegrationConcurrentClients(t *testing.T) {
	const (
		nClients = 16
		span     = 50
		nTx      = 20
	)
	totalKeys := int64(nClients * span)

	db := core.NewDatabase(testDBOpts())
	t.Cleanup(func() { db.Pool().AssertUnpinned(t) })
	_, addr := startServer(t, db, Config{MaxInflight: 64})

	admin := dialClient(t, addr)
	if err := installCatalogNet(admin, totalKeys); err != nil {
		t.Fatal(err)
	}

	scripts := make([][][]scriptOp, nClients)
	for i := range scripts {
		scripts[i] = genScript(int64(1000+i), int64(i*span), span, nTx)
	}

	var wg sync.WaitGroup
	errs := make(chan error, nClients)
	for i := 0; i < nClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			runner := newNetRunner(c)
			for txi, ops := range scripts[i] {
				if err := runner.runTx(ops); err != nil {
					errs <- fmt.Errorf("client %d tx %d: %w", i, txi, err)
					return
				}
				// Interleave reads with writes: these exercise
				// query-modification and deferred refresh under load;
				// only success is asserted, contents are checked at
				// the end.
				if txi%5 == 2 {
					if _, err := c.QueryView("qsp", nil); err != nil {
						errs <- fmt.Errorf("client %d read qsp: %w", i, err)
						return
					}
				}
				if txi%7 == 3 {
					if _, _, err := c.QueryAggregate("vagg"); err != nil {
						errs <- fmt.Errorf("client %d read vagg: %w", i, err)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	got := netState(t, admin)

	// Oracle: one engine, same catalog, every script replayed serially.
	oracle := core.NewDatabase(testDBOpts())
	t.Cleanup(func() { oracle.Pool().AssertUnpinned(t) })
	if err := installCatalogLocal(oracle, totalKeys); err != nil {
		t.Fatal(err)
	}
	for i := range scripts {
		if err := runScriptLocal(oracle, scripts[i]); err != nil {
			t.Fatalf("oracle client %d: %v", i, err)
		}
	}
	want := localState(t, oracle)

	diffStates(t, "served engine", got, want)

	if h, err := admin.Health(); err != nil {
		t.Fatal(err)
	} else if h.Commits == 0 || h.Views != 4 {
		t.Errorf("health snapshot implausible: %+v", h)
	}
}

// TestGracefulShutdownDrains proves Shutdown lets an in-flight request
// finish and flush its response while refusing new work.
func TestGracefulShutdownDrains(t *testing.T) {
	db := core.NewDatabase(testDBOpts())
	srv, addr := startServer(t, db, Config{MaxInflight: 4})

	c := dialClient(t, addr)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	// Park one request inside its admission slot, then shut down.
	entered := make(chan struct{})
	release := make(chan struct{})
	srv.setAdmitHoldForTest(func() {
		close(entered)
		<-release
	})
	pinged := make(chan error, 1)
	go func() {
		c2 := dialClient(t, addr)
		pinged <- c2.Ping()
	}()
	<-entered
	srv.setAdmitHoldForTest(nil)

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// The drain must block on the parked request...
	select {
	case err := <-shutdownDone:
		t.Fatalf("shutdown returned (%v) before in-flight request finished", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	// ...and complete once it is released, with the response delivered.
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-pinged; err != nil {
		t.Fatalf("in-flight ping during drain: %v", err)
	}
}
