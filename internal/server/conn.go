package server

import (
	"errors"
	"time"

	"net"

	"viewmat/internal/frame"
	"viewmat/internal/proto"
)

// handleConn runs one connection's request/response loop until the
// peer hangs up, the idle deadline passes, the stream is damaged, or
// the server stops.
func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	for {
		if s.draining() {
			return
		}
		conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		req, err := proto.ReadRequest(conn)
		if err != nil {
			switch {
			case isClosedConnErr(err):
				// Peer hung up, idle timeout, or shutdown nudge.
			case errors.Is(err, frame.ErrChecksum),
				errors.Is(err, frame.ErrTooLarge),
				errors.Is(err, frame.ErrEmpty),
				errors.Is(err, proto.ErrDecode):
				// The stream carried a damaged or malicious frame. Framing
				// can no longer be trusted, so answer with a typed error
				// and close — never panic, never hang.
				s.writeResponse(conn, &proto.Response{Code: proto.CodeBadRequest, Err: err.Error()})
			default:
				s.cfg.Logf("server: read on %s: %v", conn.RemoteAddr(), err)
			}
			return
		}

		resp := s.admitAndProcess(req)
		if !s.writeResponse(conn, resp) {
			return
		}
	}
}

// writeResponse writes one response under the write deadline,
// reporting whether the connection is still usable.
func (s *Server) writeResponse(conn net.Conn, resp *proto.Response) bool {
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	if err := proto.WriteResponse(conn, resp); err != nil {
		if !isClosedConnErr(err) {
			s.cfg.Logf("server: write on %s: %v", conn.RemoteAddr(), err)
		}
		return false
	}
	return true
}

// admitAndProcess applies admission control, then executes the request
// against the engine. A request that finds every slot taken is
// answered CodeBusy without blocking: under overload the server sheds
// typed errors instead of growing a queue.
func (s *Server) admitAndProcess(req *proto.Request) *proto.Response {
	if s.draining() {
		return &proto.Response{Code: proto.CodeShutdown, Err: "server shutting down"}
	}
	select {
	case s.sem <- struct{}{}:
	default:
		return &proto.Response{Code: proto.CodeBusy, Err: "server busy: in-flight request cap reached"}
	}
	defer func() { <-s.sem }()
	if hold := s.admitHold.Load(); hold != nil {
		(*hold)()
	}
	return s.process(req)
}
