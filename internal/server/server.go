// Package server implements viewmatd's network front-end: a TCP server
// speaking the internal/proto protocol that multiplexes many client
// connections onto one thread-safe core.Database.
//
// The serving model (DESIGN.md §9):
//
//   - One goroutine per connection, strict request/response framing.
//   - Admission control: a semaphore bounds requests executing against
//     the engine; a request arriving at the cap is answered CodeBusy
//     immediately rather than queued, so overload surfaces as a typed
//     error instead of unbounded latency.
//   - Per-connection deadlines: an idle read deadline while waiting
//     for the next request, a write deadline per response.
//   - Graceful shutdown: Shutdown stops the accept loop, lets every
//     in-flight request finish and its response flush, then closes the
//     connections. Kill is the crash path — it drops everything on the
//     floor, which is exactly what the crash-restart tests need.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"viewmat/internal/core"
)

// Config tunes a Server. The zero value gets sensible defaults from
// New.
type Config struct {
	// Addr is the listen address for ListenAndServe (host:port).
	Addr string
	// MaxInflight bounds requests executing against the engine at
	// once; requests beyond it are answered CodeBusy. Default 64.
	MaxInflight int
	// ReadTimeout is how long a connection may sit idle between
	// requests before the server closes it. Default 5m.
	ReadTimeout time.Duration
	// WriteTimeout bounds writing one response. Default 30s.
	WriteTimeout time.Duration
	// Logf, when non-nil, receives serving-loop diagnostics (accept
	// errors, recovered handler panics). Default: discard.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 5 * time.Minute
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server state machine: running → draining (Shutdown) or killed
// (Kill); both end closed.
const (
	stateRunning int32 = iota
	stateDraining
	stateClosed
)

// Server serves the viewmat protocol over TCP.
type Server struct {
	db  *core.Database
	cfg Config

	// sem is the admission-control semaphore: a slot is held for the
	// duration of one engine call.
	sem chan struct{}

	state atomic.Int32

	mu    sync.Mutex
	lis   net.Listener
	conns map[net.Conn]struct{}

	// wg tracks connection-handler goroutines.
	wg sync.WaitGroup

	// admitHold, when non-nil, runs while a request holds its
	// admission slot, before it touches the engine. It is a test seam:
	// the backpressure test parks admitted requests here to make
	// "exactly K in flight" deterministic.
	admitHold atomic.Pointer[func()]
}

// New builds a server over an existing engine. The engine may already
// hold data and may have durability enabled; the server adds no state
// of its own.
func New(db *core.Database, cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		db:    db,
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.MaxInflight),
		conns: map[net.Conn]struct{}{},
	}
}

// DB returns the served engine (the crash-restart tests query it
// directly to cross-check socket answers).
func (s *Server) DB() *core.Database { return s.db }

// ListenAndServe listens on cfg.Addr and serves until Shutdown or
// Kill.
func (s *Server) ListenAndServe() error {
	lis, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(lis)
}

// Serve accepts connections on lis until the listener is closed by
// Shutdown or Kill. It returns nil on a clean stop.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.state.Load() != stateRunning {
		s.mu.Unlock()
		lis.Close()
		return fmt.Errorf("server: already stopped")
	}
	s.lis = lis
	s.mu.Unlock()

	for {
		conn, err := lis.Accept()
		if err != nil {
			if s.state.Load() != stateRunning {
				return nil // Shutdown/Kill closed the listener
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return err
		}
		s.mu.Lock()
		if s.state.Load() != stateRunning {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lis == nil {
		return nil
	}
	return s.lis.Addr()
}

// Shutdown drains the server gracefully: stop accepting, answer
// nothing new, let in-flight requests finish and their responses
// flush, then close every connection. If ctx expires first the
// remaining connections are closed hard.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.state.CompareAndSwap(stateRunning, stateDraining) {
		return nil
	}
	s.mu.Lock()
	if s.lis != nil {
		s.lis.Close()
	}
	// Interrupt idle readers now. A connection mid-request keeps its
	// engine call and response write (the write deadline is set per
	// response); its loop observes the drain state on the next
	// iteration and exits.
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.closeAllConns()
		<-done
	}
	s.state.Store(stateClosed)
	return err
}

// Kill stops the server as a crash would: the listener and every
// connection are closed immediately, with no drain and no farewell
// responses. The engine object is left as-is; a killed process's state
// survives only through whatever durability devices it was given.
func (s *Server) Kill() {
	if !s.state.CompareAndSwap(stateRunning, stateClosed) {
		s.state.Store(stateClosed)
	}
	s.mu.Lock()
	if s.lis != nil {
		s.lis.Close()
	}
	s.mu.Unlock()
	s.closeAllConns()
	s.wg.Wait()
}

func (s *Server) closeAllConns() {
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
}

// draining reports whether the server has left the running state.
func (s *Server) draining() bool { return s.state.Load() != stateRunning }

// setAdmitHoldForTest installs (or clears, with nil) the admission
// hold hook.
func (s *Server) setAdmitHoldForTest(fn func()) {
	if fn == nil {
		s.admitHold.Store(nil)
		return
	}
	s.admitHold.Store(&fn)
}

// isClosedConnErr reports errors that just mean "the peer or the
// server closed this connection" — the quiet ends of a connection's
// life that deserve no logging.
func isClosedConnErr(err error) bool {
	return errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, os.ErrDeadlineExceeded)
}
