package server

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"viewmat/internal/client"
	"viewmat/internal/core"
	"viewmat/internal/tuple"
	"viewmat/internal/wal"
)

// openWALPair opens (or reopens) the WAL and snapshot files under dir.
// Reopening the same paths with fresh handles while the killed
// server's handles still exist models a process restart: only synced
// bytes are shared state.
func openWALPair(t *testing.T, dir string) (*wal.FileDevice, *wal.FileDevice) {
	t.Helper()
	w, err := wal.OpenFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := wal.OpenFile(filepath.Join(dir, "snapshots.log"))
	if err != nil {
		w.Close()
		t.Fatal(err)
	}
	return w, s
}

const crashTotalTx = 24

// crashDDL installs the durable test catalog through a client: r plus
// a deferred select-project and a deferred sum over k ∈ [0, 1000).
func crashDDL(c *client.Client) error {
	if err := c.CreateRelationBTree("r", baseSchema(), 0); err != nil {
		return err
	}
	if err := c.CreateView(spDef("vsp", 0, 1000), core.Deferred); err != nil {
		return err
	}
	return c.CreateView(sumDef("vagg", 0, 1000), core.Deferred)
}

// crashTxNet runs logical transaction j through a client. Transactions
// insert one row each; every fifth deletes the previous transaction's
// row using the id acknowledged for it, exercising cross-restart id
// stability. made maps tx index → inserted row.
func crashTxNet(c *client.Client, j int, made map[int]liveRow) error {
	tx := c.Begin()
	if j%5 == 4 {
		prev := made[j-1]
		tx.Delete("r", tuple.I(prev.key), prev.id)
	}
	key := int64(j * 7 % 1000)
	tx.Insert("r", tuple.I(key), tuple.I(int64(j*3)), tuple.S(fmt.Sprintf("t%d", j)))
	ids, err := tx.Commit()
	if err != nil {
		return err
	}
	made[j] = liveRow{key, ids[len(ids)-1]}
	return nil
}

// crashOracle replays DDL plus the first n transactions serially on a
// volatile in-process engine and returns its comparison state.
func crashOracle(t *testing.T, n int) map[string][]string {
	t.Helper()
	db := core.NewDatabase(testDBOpts())
	if _, err := db.CreateRelationBTree("r", baseSchema(), 0); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateView(spDef("vsp", 0, 1000), core.Deferred); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateView(sumDef("vagg", 0, 1000), core.Deferred); err != nil {
		t.Fatal(err)
	}
	made := map[int]liveRow{}
	for j := 0; j < n; j++ {
		tx := db.Begin()
		if j%5 == 4 {
			prev := made[j-1]
			if err := tx.Delete("r", tuple.I(prev.key), prev.id); err != nil {
				t.Fatal(err)
			}
		}
		key := int64(j * 7 % 1000)
		id, err := tx.Insert("r", tuple.I(key), tuple.I(int64(j*3)), tuple.S(fmt.Sprintf("t%d", j)))
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		made[j] = liveRow{key, id}
	}
	return crashState(t, db)
}

// crashState is the durable subset of the comparison state: the two
// views that exist in the crash catalog.
func crashState(t *testing.T, db *core.Database) map[string][]string {
	t.Helper()
	if err := db.RefreshAll(); err != nil {
		t.Fatal(err)
	}
	state := map[string][]string{}
	rows, err := db.QueryView("vsp", nil)
	if err != nil {
		t.Fatal(err)
	}
	state["vsp"] = sortedKeys(resultRowsToVals(rows))
	sum, ok, err := db.QueryAggregate("vagg")
	if err != nil {
		t.Fatal(err)
	}
	state["vagg"] = []string{fmt.Sprintf("%v/%v", sum, ok)}
	return state
}

func sameState(a, b map[string][]string) bool {
	for _, v := range []string{"vsp", "vagg"} {
		if len(a[v]) != len(b[v]) {
			return false
		}
		for i := range a[v] {
			if a[v][i] != b[v][i] {
				return false
			}
		}
	}
	return true
}

func diffCrashStates(t *testing.T, label string, got, want map[string][]string) {
	t.Helper()
	if !sameState(got, want) {
		t.Errorf("%s: state diverged from oracle:\n got %v\nwant %v", label, got, want)
	}
}

// TestCrashRestartRecoversAcknowledgedPrefix kills the server between
// acknowledged transactions at several points. Every transaction the
// server acknowledged was synced to the WAL before its response, so
// the recovered engine must equal the oracle's replay of exactly that
// prefix — then a restarted server must carry the workload to the same
// final state as a run that never crashed.
func TestCrashRestartRecoversAcknowledgedPrefix(t *testing.T) {
	for _, kill := range []int{0, 3, 11, 17} {
		kill := kill
		t.Run(fmt.Sprintf("afterTx%d", kill), func(t *testing.T) {
			dir := t.TempDir()
			walDev, snapDev := openWALPair(t, dir)

			db := core.NewDatabase(testDBOpts())
			if err := db.EnableDurability(walDev, snapDev, core.DurabilityOptions{CheckpointEvery: 4}); err != nil {
				t.Fatal(err)
			}
			srv, addr := startServer(t, db, Config{MaxInflight: 8})
			c := dialClient(t, addr)
			if err := crashDDL(c); err != nil {
				t.Fatal(err)
			}
			made := map[int]liveRow{}
			for j := 0; j < kill; j++ {
				if err := crashTxNet(c, j, made); err != nil {
					t.Fatalf("tx %d: %v", j, err)
				}
			}

			srv.Kill() // crash: no drain, no checkpoint, nothing flushed beyond acked syncs

			// "Restart": recover from the same files with fresh handles.
			walDev2, snapDev2 := openWALPair(t, dir)
			rdb, _, err := core.Recover(walDev2, snapDev2, core.DurabilityOptions{CheckpointEvery: 4})
			if err != nil {
				t.Fatalf("recover after tx %d: %v", kill, err)
			}
			diffCrashStates(t, "recovered", crashState(t, rdb), crashOracle(t, kill))

			// The revived server continues the workload to completion.
			_, addr2 := startServer(t, rdb, Config{MaxInflight: 8})
			c2 := dialClient(t, addr2)
			for j := kill; j < crashTotalTx; j++ {
				if err := crashTxNet(c2, j, made); err != nil {
					t.Fatalf("post-restart tx %d: %v", j, err)
				}
			}
			diffCrashStates(t, "resumed", crashState(t, rdb), crashOracle(t, crashTotalTx))
		})
	}
}

// TestCrashDuringCommit kills the server while one commit is in
// flight. The commit raced the crash, so the recovered state must be
// the oracle at either acked or acked+1 transactions — nothing else —
// mirroring PR-4's prefix/prefix+1 legality for torn WAL tails.
func TestCrashDuringCommit(t *testing.T) {
	const acked = 6
	dir := t.TempDir()
	walDev, snapDev := openWALPair(t, dir)

	db := core.NewDatabase(testDBOpts())
	if err := db.EnableDurability(walDev, snapDev, core.DurabilityOptions{CheckpointEvery: 4}); err != nil {
		t.Fatal(err)
	}
	srv, addr := startServer(t, db, Config{MaxInflight: 8})
	c := dialClient(t, addr)
	if err := crashDDL(c); err != nil {
		t.Fatal(err)
	}
	made := map[int]liveRow{}
	for j := 0; j < acked; j++ {
		if err := crashTxNet(c, j, made); err != nil {
			t.Fatalf("tx %d: %v", j, err)
		}
	}

	// Race one more commit against Kill. Its outcome is unknowable by
	// design: the client may see an error or a success whose response
	// died on the wire.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c2, err := client.Dial(addr)
		if err != nil {
			return
		}
		defer c2.Close()
		tx := c2.Begin()
		key := int64(acked * 7 % 1000)
		tx.Insert("r", tuple.I(key), tuple.I(int64(acked*3)), tuple.S(fmt.Sprintf("t%d", acked)))
		tx.Commit() // error or not — the WAL decides what survived
	}()
	srv.Kill()
	wg.Wait()

	walDev2, snapDev2 := openWALPair(t, dir)
	rdb, _, err := core.Recover(walDev2, snapDev2, core.DurabilityOptions{CheckpointEvery: 4})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	got := crashState(t, rdb)
	atAcked := crashOracle(t, acked)
	atNext := crashOracle(t, acked+1)
	if !sameState(got, atAcked) && !sameState(got, atNext) {
		t.Errorf("recovered state matches neither oracle(%d) nor oracle(%d):\n got %v\n o%d %v\n o%d %v",
			acked, acked+1, got, acked, atAcked, acked+1, atNext)
	}
}
