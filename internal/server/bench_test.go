package server

import (
	"fmt"
	"sync"
	"testing"

	"viewmat/internal/client"
	"viewmat/internal/core"
	"viewmat/internal/pred"
	"viewmat/internal/tuple"
)

// BenchmarkServerThroughput measures end-to-end request throughput
// through the socket layer — framing, gob, admission, engine — for a
// mixed read workload, contrasting one connection against sixteen.
// The req/s metric lands in CI's BENCH_server.json.
func BenchmarkServerThroughput(b *testing.B) {
	for _, nClients := range []int{1, 16} {
		b.Run(fmt.Sprintf("clients=%d", nClients), func(b *testing.B) {
			db := core.NewDatabase(core.Options{PageSize: 4000, PoolFrames: 256})
			if _, err := db.CreateRelationBTree("r", baseSchema(), 0); err != nil {
				b.Fatal(err)
			}
			tx := db.Begin()
			for i := 0; i < 2000; i++ {
				if _, err := tx.Insert("r", tuple.I(int64(i)), tuple.I(int64(i*2)), tuple.S("s")); err != nil {
					b.Fatal(err)
				}
			}
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
			if err := db.CreateView(spDef("v", 0, 2000), core.Deferred); err != nil {
				b.Fatal(err)
			}
			if err := db.RefreshAll(); err != nil {
				b.Fatal(err)
			}
			_, addr := startServer(b, db, Config{MaxInflight: 64})

			clients := make([]*client.Client, nClients)
			for i := range clients {
				c, err := client.Dial(addr)
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				clients[i] = c
			}

			start := make(chan struct{})
			var wg sync.WaitGroup
			per := b.N/nClients + 1
			b.ResetTimer()
			for i, c := range clients {
				wg.Add(1)
				go func(i int, c *client.Client) {
					defer wg.Done()
					<-start
					for j := 0; j < per; j++ {
						lo := int64((i*per + j) % 1900)
						rg := pred.NewRange(tuple.I(lo), tuple.I(lo+20), true, false)
						if _, err := c.QueryView("v", rg); err != nil {
							b.Errorf("client %d: %v", i, err)
							return
						}
					}
				}(i, c)
			}
			close(start)
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(per*nClients)/b.Elapsed().Seconds(), "req/s")
		})
	}
}
