package server

import (
	"fmt"

	"viewmat/internal/core"
	"viewmat/internal/proto"
)

// process executes one admitted request against the engine. Handler
// panics (which a hostile request must never be able to provoke, but
// defense in depth is cheap) are converted to CodeError so the
// connection goroutine survives whatever the engine does.
func (s *Server) process(req *proto.Request) (resp *proto.Response) {
	defer func() {
		if r := recover(); r != nil {
			s.cfg.Logf("server: recovered panic handling %v: %v", req.Op, r)
			resp = &proto.Response{Code: proto.CodeError, Err: fmt.Sprintf("internal: %v", r)}
		}
	}()

	switch req.Op {
	case proto.OpPing:
		return &proto.Response{Code: proto.CodeOK}

	case proto.OpCreateRelBTree:
		if len(req.Schema) == 0 {
			return badRequest("create-rel-btree: empty schema")
		}
		_, err := s.db.CreateRelationBTree(req.Name, proto.SchemaFromDTO(req.Schema), req.KeyCol)
		return statusOnly(err)

	case proto.OpCreateRelHash:
		if len(req.Schema) == 0 {
			return badRequest("create-rel-hash: empty schema")
		}
		_, err := s.db.CreateRelationHash(req.Name, proto.SchemaFromDTO(req.Schema), req.KeyCol, req.Buckets)
		return statusOnly(err)

	case proto.OpCreateView:
		if req.View == nil {
			return badRequest("create-view: missing definition")
		}
		if req.Strategy < int(core.QueryModification) || req.Strategy > int(core.RecomputeOnDemand) {
			return badRequest(fmt.Sprintf("create-view: unknown strategy %d", req.Strategy))
		}
		return statusOnly(s.db.CreateView(proto.DefFromDTO(*req.View), core.Strategy(req.Strategy)))

	case proto.OpDropView:
		return statusOnly(s.db.DropView(req.Name))

	case proto.OpCommit:
		return s.processCommit(req)

	case proto.OpQueryView:
		var rows []core.ResultRow
		var err error
		rg := proto.RangeFromDTO(req.Range)
		if req.Plan < 0 {
			rows, err = s.db.QueryView(req.Name, rg)
		} else {
			rows, err = s.db.QueryViewPlan(req.Name, rg, core.QueryPlan(req.Plan))
		}
		if err != nil {
			return engineError(err)
		}
		out := make([][]proto.ValueDTO, len(rows))
		for i, r := range rows {
			out[i] = proto.ValuesToDTO(r.Vals)
		}
		return &proto.Response{Code: proto.CodeOK, Rows: out}

	case proto.OpQueryAggregate:
		v, ok, err := s.db.QueryAggregate(req.Name)
		if err != nil {
			return engineError(err)
		}
		return &proto.Response{Code: proto.CodeOK, Agg: v, AggOK: ok}

	case proto.OpRefreshAll:
		return statusOnly(s.db.RefreshAll())

	case proto.OpCheckpoint:
		return statusOnly(s.db.Checkpoint())

	case proto.OpHealth:
		h := s.db.Health()
		return &proto.Response{Code: proto.CodeOK, Health: &h}

	case proto.OpAdvisorStats:
		return &proto.Response{Code: proto.CodeOK, Advisor: s.db.AdvisorStats()}

	case proto.OpCreateSecondary:
		return statusOnly(s.db.CreateSecondaryIndex(req.Name, req.KeyCol))

	case proto.OpAdaptTick:
		flips, err := s.db.AdaptTick()
		if err != nil {
			return engineError(err)
		}
		return &proto.Response{Code: proto.CodeOK, Flips: flips}

	default:
		return badRequest(fmt.Sprintf("unknown op %d", req.Op))
	}
}

// processCommit runs one transaction: ops are validated and queued in
// request order and applied atomically by Commit. The response carries
// the id assigned to each insert and update, in op order, so clients
// can address those tuples in later transactions.
func (s *Server) processCommit(req *proto.Request) *proto.Response {
	if len(req.TxOps) == 0 {
		return badRequest("commit: empty transaction")
	}
	tx := s.db.Begin()
	ids := make([]uint64, 0, len(req.TxOps))
	for i, op := range req.TxOps {
		switch op.Kind {
		case proto.TxInsert:
			id, err := tx.Insert(op.Rel, proto.ValuesFromDTO(op.Vals)...)
			if err != nil {
				return engineError(fmt.Errorf("op %d: %w", i, err))
			}
			ids = append(ids, id)
		case proto.TxDelete:
			if err := tx.Delete(op.Rel, proto.ValueFromDTO(op.Key), op.ID); err != nil {
				return engineError(fmt.Errorf("op %d: %w", i, err))
			}
		case proto.TxUpdate:
			id, err := tx.Update(op.Rel, proto.ValueFromDTO(op.Key), op.ID, proto.ValuesFromDTO(op.Vals)...)
			if err != nil {
				return engineError(fmt.Errorf("op %d: %w", i, err))
			}
			ids = append(ids, id)
		default:
			return badRequest(fmt.Sprintf("commit: op %d has unknown kind %d", i, op.Kind))
		}
	}
	if err := tx.Commit(); err != nil {
		return engineError(err)
	}
	return &proto.Response{Code: proto.CodeOK, IDs: ids}
}

func statusOnly(err error) *proto.Response {
	if err != nil {
		return engineError(err)
	}
	return &proto.Response{Code: proto.CodeOK}
}

func engineError(err error) *proto.Response {
	return &proto.Response{Code: proto.CodeError, Err: err.Error()}
}

func badRequest(msg string) *proto.Response {
	return &proto.Response{Code: proto.CodeBadRequest, Err: msg}
}
