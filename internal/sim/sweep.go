package sim

import (
	"fmt"

	"viewmat/internal/core"
	"viewmat/internal/costmodel"
	"viewmat/internal/figures"
)

// SweepPoint is one measured grid point: the model-scope average cost
// per query for each strategy at one update probability.
type SweepPoint struct {
	P          float64
	Measured   map[string]float64 // strategy → scope ms/query
	Model      map[string]float64 // strategy → analytic ms/query
	WholeSys   map[string]float64 // strategy → whole-system ms/query
	QueriesRun int
}

// SweepP replays the workload at several update probabilities (holding
// q fixed, adjusting k — exactly how the figures vary P) and measures
// each strategy. It is the engine-side regeneration of the P-axis
// figures (1 and 5).
func SweepP(model Model, base costmodel.Params, ps []float64, seed int64) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(ps))
	for _, pv := range ps {
		params := base.WithP(pv)
		point := SweepPoint{
			P:        pv,
			Measured: map[string]float64{},
			Model:    map[string]float64{},
			WholeSys: map[string]float64{},
		}
		for _, st := range []core.Strategy{core.QueryModification, core.Immediate, core.Deferred} {
			res, err := Run(Config{Model: model, Strategy: st, Params: params, Seed: seed})
			if err != nil {
				return nil, fmt.Errorf("sim: sweep P=%v %v: %w", pv, st, err)
			}
			point.Measured[st.String()] = res.ModelScopeAvg
			point.Model[st.String()] = res.Model
			point.WholeSys[st.String()] = res.AvgPerQuery
			point.QueriesRun = res.Queries
		}
		out = append(out, point)
	}
	return out, nil
}

// SweepL replays the Model-3 workload at several per-transaction
// update sizes — the engine-side regeneration of Figure 8's x-axis.
func SweepL(base costmodel.Params, ls []float64, seed int64) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(ls))
	for _, l := range ls {
		params := base
		params.L = l
		point := SweepPoint{
			P:        l, // x-value; callers label the axis
			Measured: map[string]float64{},
			Model:    map[string]float64{},
			WholeSys: map[string]float64{},
		}
		for _, st := range []core.Strategy{core.QueryModification, core.Immediate, core.Deferred} {
			res, err := Run(Config{Model: Model3, Strategy: st, Params: params, Seed: seed})
			if err != nil {
				return nil, fmt.Errorf("sim: sweep l=%v %v: %w", l, st, err)
			}
			point.Measured[st.String()] = res.ModelScopeAvg
			point.Model[st.String()] = res.Model
			point.WholeSys[st.String()] = res.AvgPerQuery
			point.QueriesRun = res.Queries
		}
		out = append(out, point)
	}
	return out, nil
}

// MeasuredFigure renders a sweep as a figure: one measured series per
// strategy plus the analytic prediction alongside, so the measured and
// model curves can be compared in one table.
func MeasuredFigure(id, title, xlabel string, points []SweepPoint) *figures.Figure {
	fig := &figures.Figure{
		ID:     id,
		Title:  title,
		XLabel: xlabel,
		YLabel: "scope ms/query (measured) and model ms/query",
	}
	if len(points) == 0 {
		return fig
	}
	strategies := []string{"query-modification", "immediate", "deferred"}
	for _, st := range strategies {
		s := figures.Series{Name: st + " (measured)"}
		for _, pt := range points {
			s.X = append(s.X, pt.P)
			s.Y = append(s.Y, pt.Measured[st])
		}
		fig.Series = append(fig.Series, s)
	}
	for _, st := range strategies {
		s := figures.Series{Name: st + " (model)"}
		for _, pt := range points {
			s.X = append(s.X, pt.P)
			s.Y = append(s.Y, pt.Model[st])
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}
