// Package sim runs the paper's workloads against the executable engine
// and measures the average cost per view query, priced with the
// model's unit costs (C1 per screen, C2 per page I/O, C3 per A/D
// touch) — the operational validation of the analytic cost model.
//
// Measured totals include the base-update I/O that the model factors
// out (it is common to all strategies, so orderings are preserved;
// EXPERIMENTS.md discusses the offset), and the fold cost of deferred
// maintenance, which is the base-update work the other strategies pay
// inline.
package sim

import (
	"fmt"

	"viewmat/internal/agg"
	"viewmat/internal/core"
	"viewmat/internal/costmodel"
	"viewmat/internal/hr"
	"viewmat/internal/pred"
	"viewmat/internal/storage"
	"viewmat/internal/tuple"
	"viewmat/internal/workload"
)

// Model selects which of the paper's view models to simulate.
type Model int

const (
	// Model1 is the selection-projection view.
	Model1 Model = 1
	// Model2 is the two-way join view.
	Model2 Model = 2
	// Model3 is the aggregate view.
	Model3 Model = 3
)

// Config configures one simulation run.
type Config struct {
	Model    Model
	Strategy core.Strategy
	// Plan overrides the query-modification access path (PlanAuto
	// resolves to clustered for Model 1/3 and loopjoin for Model 2).
	Plan   core.QueryPlan
	Params costmodel.Params
	Seed   int64
	// AggKind selects the Model-3 aggregate (default Sum).
	AggKind agg.Kind
	// Skew is the update-key Zipf parameter (0 = uniform, the paper's
	// assumption; see workload.Spec.Skew).
	Skew float64
	// SnapshotEvery sets the staleness budget (in commits) when
	// Strategy is core.Snapshot; 0 refreshes at every read that
	// follows a touching commit.
	SnapshotEvery int
	// BatchSize caps the rows per executor batch (0 = vectorized
	// default, 1 = row-at-a-time). Results and metered charges are
	// identical either way; only wall-clock time changes.
	BatchSize int
	// PageLayout selects the on-disk data-page encoding (zero =
	// columnar default, storage.PageLayoutRow = the row-major escape
	// hatch). Results are identical either way, and so are metered
	// charges except for pages zone maps prune (sequential plans under
	// the columnar layout skip disproven pages without charging them);
	// columnar also adds vector-direct decode.
	PageLayout storage.PageLayout
}

// Result is one run's measurement.
type Result struct {
	Config      Config
	AvgPerQuery float64 // measured ms per query (C1/C2/C3-priced), all phases
	// ModelScopeAvg excludes the commit-write and fold phases — the
	// base-relation update work the analytic model factors out of
	// every strategy (it prices only the *extra* HR I/O, via C_AD).
	// This is the measurement directly comparable to the TOTAL
	// formulas; AvgPerQuery is the fair whole-system number.
	ModelScopeAvg float64
	Queries       int
	Commits       int
	Totals        storage.Stats
	Breakdown     map[core.Phase]storage.Stats
	// Model is the analytic prediction for the same parameters.
	Model float64
	// PlanTrees renders the view's last executed operator tree per
	// path ("query", "refresh", "populate"), priced at the run's unit
	// costs.
	PlanTrees map[string]string
	// PagesPruned counts data pages zone maps skipped unread across
	// the whole run (always 0 under PageLayoutRow).
	PagesPruned int64
}

// viewName is the single view every simulation uses.
const viewName = "v"

// Run builds the database, loads the data, replays the generated
// workload and reports the measured average cost per query.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	db, ids, err := setup(cfg)
	if err != nil {
		return nil, err
	}
	ops, err := workload.Generate(workload.Spec{Params: cfg.Params, Seed: cfg.Seed, Skew: cfg.Skew})
	if err != nil {
		return nil, err
	}
	if cfg.Strategy == core.Snapshot {
		if err := db.SetSnapshotInterval(viewName, cfg.SnapshotEvery); err != nil {
			return nil, err
		}
	}
	db.ResetStats()

	p := cfg.Params
	for _, op := range ops {
		switch op.Kind {
		case workload.OpUpdate:
			tx := db.Begin()
			for i, key := range op.Keys {
				newID, err := applyUpdate(tx, cfg, key, ids[key], op.NewPayload[i])
				if err != nil {
					return nil, err
				}
				ids[key] = newID
			}
			if err := tx.Commit(); err != nil {
				return nil, err
			}
		case workload.OpQuery:
			if cfg.Model == Model3 {
				if _, _, err := db.QueryAggregate(viewName); err != nil {
					return nil, err
				}
			} else {
				rg := pred.NewRange(tuple.I(op.QueryLo), tuple.I(op.QueryHi), true, true)
				if _, err := db.QueryViewPlan(viewName, rg, cfg.Plan); err != nil {
					return nil, err
				}
			}
		}
	}

	totals := db.Meter().Snapshot()
	breakdown := db.Breakdown()
	scope := totals.Sub(breakdown[core.PhaseCommitWrite]).Sub(breakdown[core.PhaseFold])
	res := &Result{
		Config:        cfg,
		Queries:       db.Queries,
		Commits:       db.Commits,
		Totals:        totals,
		Breakdown:     breakdown,
		AvgPerQuery:   totals.Cost(p.C1, p.C2, p.C3) / float64(db.Queries),
		ModelScopeAvg: scope.Cost(p.C1, p.C2, p.C3) / float64(db.Queries),
		Model:         Predict(cfg),
		PagesPruned:   db.PagesPruned(),
	}
	if trees, err := db.RenderPlans(viewName, p.C1, p.C2, p.C3); err == nil {
		res.PlanTrees = trees
	}
	return res, nil
}

// applyUpdate issues one tuple modification for the configured model.
func applyUpdate(tx *core.Tx, cfg Config, key int64, curID uint64, payload int64) (uint64, error) {
	switch cfg.Model {
	case Model2:
		// R1(k, jv, pay): keep k and jv, change pay.
		jv := key % int64(cfg.Params.FR2*cfg.Params.N)
		return tx.Update("r1", tuple.I(key), curID, tuple.I(key), tuple.I(jv), tuple.I(payload))
	default:
		// R(k, a, pay): keep k, change a (the aggregated column) and pay.
		return tx.Update("r", tuple.I(key), curID, tuple.I(key), tuple.I(payload%1000), tuple.S(widePayload(payload)))
	}
}

// widePayload builds the deterministic wide column that stands in for
// the half of R's attributes the view projects away: Model 1 assumes
// view tuples are half the size of base tuples (S/2), so the base
// relation must actually carry that weight for the materialized copy's
// page-density advantage to exist.
func widePayload(seed int64) string {
	const width = 56
	b := make([]byte, width)
	for i := range b {
		b[i] = byte('a' + (seed+int64(i))%26)
	}
	return string(b)
}

// setup builds relations, seed data and the view; returns the id map
// (clustering key → current tuple id).
func setup(cfg Config) (*core.Database, map[int64]uint64, error) {
	p := cfg.Params
	n := int64(p.N)
	db := core.NewDatabase(core.Options{
		PageSize:   int(p.B),
		PoolFrames: poolFramesFor(p),
		BatchSize:  cfg.BatchSize,
		PageLayout: cfg.PageLayout,
		HR: hr.Config{
			ADBuckets: adBucketsFor(p),
			BloomKeys: int(4 * p.U() * 2),
		},
	})
	ids := make(map[int64]uint64, n)

	switch cfg.Model {
	case Model2:
		s1 := tuple.NewSchema(tuple.Col("k", tuple.Int), tuple.Col("jv", tuple.Int), tuple.Col("pay", tuple.Int))
		s2 := tuple.NewSchema(tuple.Col("jv", tuple.Int), tuple.Col("info", tuple.Int))
		if _, err := db.CreateRelationBTree("r1", s1, 0); err != nil {
			return nil, nil, err
		}
		n2 := int64(p.FR2 * p.N)
		if n2 < 1 {
			n2 = 1
		}
		buckets := int(float64(n2)/p.TuplesPerPage()) + 1
		if _, err := db.CreateRelationHash("r2", s2, 0, buckets); err != nil {
			return nil, nil, err
		}
		tx := db.Begin()
		for j := int64(0); j < n2; j++ {
			if _, err := tx.Insert("r2", tuple.I(j), tuple.I(j*7)); err != nil {
				return nil, nil, err
			}
		}
		if err := tx.Commit(); err != nil {
			return nil, nil, err
		}
		tx = db.Begin()
		for i := int64(0); i < n; i++ {
			id, err := tx.Insert("r1", tuple.I(i), tuple.I(i%n2), tuple.I(i))
			if err != nil {
				return nil, nil, err
			}
			ids[i] = id
			if i%5000 == 4999 { // bound transaction size during load
				if err := tx.Commit(); err != nil {
					return nil, nil, err
				}
				tx = db.Begin()
			}
		}
		if err := tx.Commit(); err != nil {
			return nil, nil, err
		}
		def := core.Def{
			Name:      viewName,
			Kind:      core.Join,
			Relations: []string{"r1", "r2"},
			Pred: pred.New(
				pred.Cmp{Rel: 0, Col: 0, Op: pred.Lt, Val: tuple.I(int64(p.F * p.N))},
				pred.JoinEq{LRel: 0, LCol: 1, RRel: 1, RCol: 0},
			),
			Project:    [][]int{{0, 2}, {1}},
			ViewKeyCol: 0,
		}
		if err := db.CreateView(def, cfg.Strategy); err != nil {
			return nil, nil, err
		}
	default:
		s := tuple.NewSchema(tuple.Col("k", tuple.Int), tuple.Col("a", tuple.Int), tuple.Col("pay", tuple.String))
		if _, err := db.CreateRelationBTree("r", s, 0); err != nil {
			return nil, nil, err
		}
		tx := db.Begin()
		for i := int64(0); i < n; i++ {
			id, err := tx.Insert("r", tuple.I(i), tuple.I(i%1000), tuple.S(widePayload(i)))
			if err != nil {
				return nil, nil, err
			}
			ids[i] = id
			if i%5000 == 4999 {
				if err := tx.Commit(); err != nil {
					return nil, nil, err
				}
				tx = db.Begin()
			}
		}
		if err := tx.Commit(); err != nil {
			return nil, nil, err
		}
		viewPred := pred.New(pred.Cmp{Rel: 0, Col: 0, Op: pred.Lt, Val: tuple.I(int64(p.F * p.N))})
		if cfg.Model == Model3 {
			def := core.Def{
				Name:      viewName,
				Kind:      core.Aggregate,
				Relations: []string{"r"},
				Pred:      viewPred,
				AggKind:   cfg.AggKind,
				AggCol:    1,
			}
			if err := db.CreateView(def, cfg.Strategy); err != nil {
				return nil, nil, err
			}
		} else {
			def := core.Def{
				Name:       viewName,
				Kind:       core.SelectProject,
				Relations:  []string{"r"},
				Pred:       viewPred,
				Project:    [][]int{{0, 1}}, // half the attributes, per Model 1
				ViewKeyCol: 0,
			}
			if err := db.CreateView(def, cfg.Strategy); err != nil {
				return nil, nil, err
			}
		}
	}
	return db, ids, nil
}

// poolFramesFor sizes the buffer pool to the model's assumption: large
// enough to keep R2 (fR2·b pages) resident during a join, small
// relative to the base relation.
func poolFramesFor(p costmodel.Params) int {
	frames := int(p.FR2*p.Blocks()) + 64
	if frames < 128 {
		frames = 128
	}
	return frames
}

// adBucketsFor sizes the AD file at its expected occupancy of 2u
// tuples.
func adBucketsFor(p costmodel.Params) int {
	b := int(2 * p.U() / p.TuplesPerPage())
	if b < 2 {
		b = 2
	}
	return b
}

// Predict returns the analytic model's TOTAL for the configuration.
func Predict(cfg Config) float64 {
	p := cfg.Params
	every := float64(cfg.SnapshotEvery)
	switch cfg.Model {
	case Model2:
		switch cfg.Strategy {
		case core.Deferred:
			return costmodel.TotalDeferred2(p)
		case core.Immediate:
			return costmodel.TotalImmediate2(p)
		case core.Snapshot:
			return costmodel.TotalSnapshot2(p, every)
		case core.RecomputeOnDemand:
			return costmodel.TotalRecomputeOnDemand2(p)
		default:
			return costmodel.TotalLoopJoin(p)
		}
	case Model3:
		switch cfg.Strategy {
		case core.Deferred:
			return costmodel.TotalDeferred3(p)
		case core.Immediate:
			return costmodel.TotalImmediate3(p)
		case core.Snapshot:
			return costmodel.TotalSnapshot3(p, every)
		case core.RecomputeOnDemand:
			return costmodel.TotalRecomputeOnDemand3(p)
		default:
			return costmodel.TotalRecompute3(p)
		}
	default:
		switch cfg.Strategy {
		case core.Deferred:
			return costmodel.TotalDeferred1(p)
		case core.Immediate:
			return costmodel.TotalImmediate1(p)
		case core.Snapshot:
			return costmodel.TotalSnapshot1(p, every)
		case core.RecomputeOnDemand:
			return costmodel.TotalRecomputeOnDemand1(p)
		default:
			switch cfg.Plan {
			case core.PlanUnclustered:
				return costmodel.TotalUnclustered(p)
			case core.PlanSequential:
				return costmodel.TotalSequential(p)
			default:
				return costmodel.TotalClustered(p)
			}
		}
	}
}

// CompareAll is Compare over all five strategies, including the two
// extensions (snapshot runs with the given refresh period; its reads
// may be stale by design).
func CompareAll(model Model, params costmodel.Params, seed int64, snapshotEvery int) ([]Comparison, error) {
	strategies := []core.Strategy{
		core.QueryModification, core.Immediate, core.Deferred,
		core.Snapshot, core.RecomputeOnDemand,
	}
	out := make([]Comparison, 0, len(strategies))
	for _, st := range strategies {
		res, err := Run(Config{
			Model: model, Strategy: st, Params: params, Seed: seed,
			AggKind: agg.Sum, SnapshotEvery: snapshotEvery,
		})
		if err != nil {
			return nil, fmt.Errorf("sim: %v/%v: %w", model, st, err)
		}
		out = append(out, Comparison{
			Strategy:       st.String(),
			Measured:       res.AvgPerQuery,
			ModelScope:     res.ModelScopeAvg,
			Model:          res.Model,
			PagesPruned:    res.PagesPruned,
			PrunedPerQuery: float64(res.PagesPruned) / float64(res.Queries),
		})
	}
	return out, nil
}

// Comparison holds one strategy's measured and predicted costs.
type Comparison struct {
	Strategy string
	// Measured is the whole-system average per query; ModelScope
	// excludes base-update phases (see Result).
	Measured   float64
	ModelScope float64
	Model      float64
	// PagesPruned is the run's total zone-map-pruned page count;
	// PrunedPerQuery averages it over the queries issued.
	PagesPruned    int64
	PrunedPerQuery float64
}

// Compare runs every strategy for a model at the same parameters and
// seed, returning measured-vs-model rows (sorted by measured cost at
// the caller's discretion).
func Compare(model Model, params costmodel.Params, seed int64) ([]Comparison, error) {
	return CompareAgg(params, seed, agg.Sum, model)
}

// CompareAgg is Compare for Model 3 with an explicit aggregate kind;
// an optional model override allows reuse for Models 1 and 2.
func CompareAgg(params costmodel.Params, seed int64, kind agg.Kind, modelOpt ...Model) ([]Comparison, error) {
	model := Model3
	if len(modelOpt) > 0 {
		model = modelOpt[0]
	}
	strategies := []core.Strategy{core.QueryModification, core.Immediate, core.Deferred}
	out := make([]Comparison, 0, len(strategies))
	for _, st := range strategies {
		res, err := Run(Config{Model: model, Strategy: st, Params: params, Seed: seed, AggKind: kind})
		if err != nil {
			return nil, fmt.Errorf("sim: %v/%v: %w", model, st, err)
		}
		out = append(out, Comparison{
			Strategy:       st.String(),
			Measured:       res.AvgPerQuery,
			ModelScope:     res.ModelScopeAvg,
			Model:          res.Model,
			PagesPruned:    res.PagesPruned,
			PrunedPerQuery: float64(res.PagesPruned) / float64(res.Queries),
		})
	}
	return out, nil
}
