package sim

import (
	"testing"

	"viewmat/internal/agg"
	"viewmat/internal/core"
	"viewmat/internal/costmodel"
)

// smallParams scales the paper's setup down ~20× so measured runs stay
// fast; ratios (f, fv, fR2, k/q) match the defaults.
func smallParams() costmodel.Params {
	p := costmodel.Default()
	p.N = 5000
	p.K, p.Q, p.L = 20, 20, 10
	return p
}

func TestModel1RunProducesCosts(t *testing.T) {
	for _, st := range []core.Strategy{core.QueryModification, core.Immediate, core.Deferred} {
		res, err := Run(Config{Model: Model1, Strategy: st, Params: smallParams(), Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		if res.Queries != 20 || res.Commits < 20 {
			t.Errorf("%v: queries=%d commits=%d", st, res.Queries, res.Commits)
		}
		if res.AvgPerQuery <= 0 {
			t.Errorf("%v: avg cost %v", st, res.AvgPerQuery)
		}
		if res.Model <= 0 {
			t.Errorf("%v: model prediction %v", st, res.Model)
		}
	}
}

func TestModel1MeasuredOrderingMatchesModelShape(t *testing.T) {
	// At the defaults' P = 0.5 scaled down, the model predicts
	// clustered < immediate ≈ deferred; the measured engine should
	// agree on the winner.
	cmp, err := Compare(Model1, smallParams(), 7)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Comparison{}
	for _, c := range cmp {
		byName[c.Strategy] = c
	}
	qm := byName["query-modification"]
	if qm.Measured >= byName["immediate"].Measured || qm.Measured >= byName["deferred"].Measured {
		t.Errorf("measured ordering disagrees with model: %+v", cmp)
	}
	// Deferred and immediate stay within 2x of each other.
	d, i := byName["deferred"].Measured, byName["immediate"].Measured
	if d > 2*i || i > 2*d {
		t.Errorf("deferred %v and immediate %v diverge more than 2x", d, i)
	}
}

func TestModel2MaterializationBeatsLoopJoin(t *testing.T) {
	// Figure 5's point at moderate P: join views favor materialization.
	p := smallParams()
	cmp, err := Compare(Model2, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Comparison{}
	for _, c := range cmp {
		byName[c.Strategy] = c
	}
	if byName["immediate"].ModelScope >= byName["query-modification"].ModelScope {
		t.Errorf("immediate (%v) should beat loopjoin (%v) at P=0.5",
			byName["immediate"].ModelScope, byName["query-modification"].ModelScope)
	}
	if byName["deferred"].ModelScope >= byName["query-modification"].ModelScope {
		t.Errorf("deferred (%v) should beat loopjoin (%v) at P=0.5",
			byName["deferred"].ModelScope, byName["query-modification"].ModelScope)
	}
}

func TestModel3MaintenanceBeatsRecompute(t *testing.T) {
	// Figure 8's point: for small l, maintaining the aggregate costs a
	// small fraction of recomputation.
	p := smallParams()
	p.L = 5
	cmp, err := Compare(Model3, p, 5)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Comparison{}
	for _, c := range cmp {
		byName[c.Strategy] = c
	}
	rec := byName["query-modification"].ModelScope
	for _, st := range []string{"immediate", "deferred"} {
		if byName[st].ModelScope > rec/2 {
			t.Errorf("%s (%v) not ≪ recompute (%v)", st, byName[st].ModelScope, rec)
		}
	}
}

func TestModel3AggKinds(t *testing.T) {
	p := smallParams()
	p.K, p.Q = 5, 5
	for _, kind := range []agg.Kind{agg.Sum, agg.Count, agg.Avg, agg.Min, agg.Max} {
		if _, err := Run(Config{Model: Model3, Strategy: core.Immediate, Params: p, Seed: 1, AggKind: kind}); err != nil {
			t.Errorf("%v: %v", kind, err)
		}
	}
}

func TestHighPFavorsQueryModification(t *testing.T) {
	// As P grows the maintenance overhead dominates; QM's flat cost
	// wins (Figure 1/5 right-hand side).
	p := smallParams()
	p.K, p.Q = 80, 5 // P ≈ 0.94
	cmp, err := Compare(Model1, p, 11)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Comparison{}
	for _, c := range cmp {
		byName[c.Strategy] = c
	}
	qm := byName["query-modification"].Measured
	if qm >= byName["immediate"].Measured || qm >= byName["deferred"].Measured {
		t.Errorf("at high P query modification should win: %+v", cmp)
	}
}

func TestDeferredBreakdownHasExpectedPhases(t *testing.T) {
	res, err := Run(Config{Model: Model1, Strategy: core.Deferred, Params: smallParams(), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, phase := range []core.Phase{core.PhaseADRead, core.PhaseDefRefresh, core.PhaseFold, core.PhaseQuery, core.PhaseScreen} {
		if res.Breakdown[phase].IOs()+res.Breakdown[phase].Screens == 0 {
			t.Errorf("phase %s unexpectedly empty", phase)
		}
	}
	if res.Breakdown[core.PhaseImmRefresh].IOs() != 0 {
		t.Error("deferred run charged immediate-refresh I/O")
	}
}

func TestImmediateBreakdownHasExpectedPhases(t *testing.T) {
	res, err := Run(Config{Model: Model1, Strategy: core.Immediate, Params: smallParams(), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Breakdown[core.PhaseImmRefresh].IOs() == 0 {
		t.Error("immediate run charged no refresh I/O")
	}
	if res.Breakdown[core.PhaseImmRefresh].ADTouches == 0 {
		t.Error("immediate run charged no C3 overhead")
	}
	for _, phase := range []core.Phase{core.PhaseADRead, core.PhaseDefRefresh, core.PhaseFold} {
		if res.Breakdown[phase].IOs() != 0 {
			t.Errorf("immediate run charged deferred phase %s", phase)
		}
	}
}

func TestPredictMatchesCostmodel(t *testing.T) {
	p := costmodel.Default()
	cases := []struct {
		cfg  Config
		want float64
	}{
		{Config{Model: Model1, Strategy: core.Deferred, Params: p}, costmodel.TotalDeferred1(p)},
		{Config{Model: Model1, Strategy: core.QueryModification, Plan: core.PlanSequential, Params: p}, costmodel.TotalSequential(p)},
		{Config{Model: Model2, Strategy: core.Immediate, Params: p}, costmodel.TotalImmediate2(p)},
		{Config{Model: Model3, Strategy: core.QueryModification, Params: p}, costmodel.TotalRecompute3(p)},
	}
	for _, c := range cases {
		if got := Predict(c.cfg); got != c.want {
			t.Errorf("Predict(%+v) = %v, want %v", c.cfg.Strategy, got, c.want)
		}
	}
}

func TestInvalidParamsRejected(t *testing.T) {
	p := smallParams()
	p.FV = 0
	if _, err := Run(Config{Model: Model1, Strategy: core.Immediate, Params: p}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestSweepPOrderingFlips(t *testing.T) {
	// Engine-side Figure 1: materialization wins at low P, query
	// modification at high P, with the flip visible in scope terms.
	p := smallParams()
	points, err := SweepP(Model1, p, []float64{0.1, 0.9}, 3)
	if err != nil {
		t.Fatal(err)
	}
	low, high := points[0], points[1]
	if low.Measured["immediate"] >= low.Measured["query-modification"] {
		t.Errorf("at P=0.1 immediate (%v) should beat QM (%v)",
			low.Measured["immediate"], low.Measured["query-modification"])
	}
	if high.Measured["query-modification"] >= high.Measured["immediate"] {
		t.Errorf("at P=0.9 QM (%v) should beat immediate (%v)",
			high.Measured["query-modification"], high.Measured["immediate"])
	}
	for _, pt := range points {
		if pt.QueriesRun == 0 || len(pt.Model) != 3 || len(pt.WholeSys) != 3 {
			t.Errorf("sweep point incomplete: %+v", pt)
		}
	}
}

func TestSweepLMaintenanceFlat(t *testing.T) {
	// Engine-side Figure 8: the recompute cost is flat in l while
	// immediate maintenance stays far below it for small l.
	p := smallParams()
	p.K, p.Q = 10, 10
	points, err := SweepL(p, []float64{2, 10}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range points {
		if pt.Measured["immediate"] > pt.Measured["query-modification"]/2 {
			t.Errorf("l=%v: immediate (%v) not ≪ recompute (%v)",
				pt.P, pt.Measured["immediate"], pt.Measured["query-modification"])
		}
	}
}

func TestMeasuredFigure(t *testing.T) {
	p := smallParams()
	p.K, p.Q = 5, 5
	points, err := SweepP(Model1, p, []float64{0.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	fig := MeasuredFigure("m1", "measured", "P", points)
	if len(fig.Series) != 6 {
		t.Errorf("series = %d, want 6 (3 measured + 3 model)", len(fig.Series))
	}
	empty := MeasuredFigure("e", "empty", "P", nil)
	if len(empty.Series) != 0 {
		t.Error("empty sweep should yield no series")
	}
}

func TestSkewedWorkloadRuns(t *testing.T) {
	// Skewed updates hammer a hot set; all strategies must stay
	// correct, and deferred's batched refresh should close (or invert)
	// its gap with immediate relative to the uniform run.
	p := smallParams()
	p.K, p.Q = 40, 10 // update-heavy, where refresh batching matters
	gap := func(skew float64) float64 {
		var imm, def float64
		for _, st := range []core.Strategy{core.Immediate, core.Deferred} {
			res, err := Run(Config{Model: Model1, Strategy: st, Params: p, Seed: 4, Skew: skew})
			if err != nil {
				t.Fatal(err)
			}
			if st == core.Immediate {
				imm = res.ModelScopeAvg
			} else {
				def = res.ModelScopeAvg
			}
		}
		return def - imm
	}
	uniformGap := gap(0)
	skewedGap := gap(2.0)
	if skewedGap >= uniformGap {
		t.Errorf("skew did not help deferred: gap %v (uniform) -> %v (skewed)", uniformGap, skewedGap)
	}
}

// TestMeasuredWithinFactorOfModel pins the calibration between the
// engine and the analytic model: the scope-measured average stays
// within a factor of 4 of the model's TOTAL at the same (scaled)
// parameters, for every model and strategy. The model rounds page
// counts, ignores index splits and uses Yao expectations, and the
// engine's HR write path is metered in full rather than as "extra"
// I/O, so equality is not expected — but an order-of-magnitude drift
// would mean the engine stopped implementing the costed algorithms.
func TestMeasuredWithinFactorOfModel(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration test")
	}
	const factor = 4.0
	for _, model := range []Model{Model1, Model2, Model3} {
		cmp, err := Compare(model, smallParams(), 13)
		if err != nil {
			t.Fatalf("model %d: %v", model, err)
		}
		for _, c := range cmp {
			bound := factor
			if model == Model3 && c.Strategy == "query-modification" {
				// The paper prices recomputation with the fv-scaled
				// TOTAL_clustered; a real recomputation reads every
				// qualifying tuple (fv = 1) — a documented 1/fv gap.
				bound = factor / smallParams().FV
			}
			ratio := c.ModelScope / c.Model
			if ratio > bound || ratio < 1/factor {
				t.Errorf("model %d %s: measured %.1f vs model %.1f (ratio %.2f, bound %.1f)",
					model, c.Strategy, c.ModelScope, c.Model, ratio, bound)
			}
		}
	}
}

func TestCompareAllFiveStrategies(t *testing.T) {
	p := smallParams()
	p.K, p.Q = 10, 10
	cmp, err := CompareAll(Model1, p, 21, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp) != 5 {
		t.Fatalf("strategies = %d, want 5", len(cmp))
	}
	byName := map[string]Comparison{}
	for _, c := range cmp {
		if c.Measured <= 0 || c.Model <= 0 {
			t.Errorf("%s: measured %v model %v", c.Strategy, c.Measured, c.Model)
		}
		byName[c.Strategy] = c
	}
	// Snapshot skips screening and most refreshes: its scope cost sits
	// at or below recompute-on-demand's on the same workload.
	if byName["snapshot"].ModelScope > byName["recompute-on-demand"].ModelScope {
		t.Errorf("snapshot (%v) should not exceed recompute-on-demand (%v)",
			byName["snapshot"].ModelScope, byName["recompute-on-demand"].ModelScope)
	}
}

func TestSnapshotStrategyRunsStale(t *testing.T) {
	// A long snapshot period means almost no refresh I/O — the run is
	// cheap precisely because reads are stale.
	p := smallParams()
	p.K, p.Q = 10, 10
	long, err := Run(Config{Model: Model1, Strategy: core.Snapshot, Params: p, Seed: 3, SnapshotEvery: 1000})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Run(Config{Model: Model1, Strategy: core.Snapshot, Params: p, Seed: 3, SnapshotEvery: 0})
	if err != nil {
		t.Fatal(err)
	}
	if long.ModelScopeAvg >= fresh.ModelScopeAvg {
		t.Errorf("long-period snapshot (%v) should be cheaper than per-read refresh (%v)",
			long.ModelScopeAvg, fresh.ModelScopeAvg)
	}
}

func TestExtensionStrategiesWithinFactorOfModel(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration test")
	}
	p := smallParams()
	p.K, p.Q = 10, 10
	cmp, err := CompareAll(Model1, p, 17, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cmp {
		if c.Strategy != "snapshot" && c.Strategy != "recompute-on-demand" {
			continue
		}
		ratio := c.ModelScope / c.Model
		if ratio > 4 || ratio < 0.25 {
			t.Errorf("%s: measured %.1f vs model %.1f (ratio %.2f)", c.Strategy, c.ModelScope, c.Model, ratio)
		}
	}
}
