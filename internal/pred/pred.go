// Package pred implements selection and join predicates for the viewmat
// engine: evaluation against tuples, the substitution-satisfiability
// test used as the second screening stage of rule indexing (Hanson §1,
// after [Blak86]), and the index-interval extraction that drives t-lock
// placement (first screening stage, after [Ston86]).
//
// A predicate is a conjunction of atoms. Each atom is either a
// comparison of one relation's column against a constant, or an
// equi-join between columns of two relations. This is exactly the class
// the paper analyzes (select-project-join with simple restrictions), and
// conjunctions of comparisons admit a complete, cheap satisfiability
// test by interval intersection.
package pred

import (
	"fmt"
	"strings"

	"viewmat/internal/tuple"
)

// Op is a comparison operator.
type Op uint8

// Comparison operators.
const (
	Eq Op = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

// String renders the operator.
func (o Op) String() string {
	switch o {
	case Eq:
		return "="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Holds reports whether "a op b" is true under tuple.Compare ordering
// — the exported form the executor's vectorized filter kernels fall
// back to for mixed-type cells.
func (o Op) Holds(a, b tuple.Value) bool { return o.holds(a, b) }

// holds reports whether "a op b" is true under tuple.Compare ordering.
func (o Op) holds(a, b tuple.Value) bool {
	c := tuple.Compare(a, b)
	switch o {
	case Eq:
		return c == 0
	case Ne:
		return c != 0
	case Lt:
		return c < 0
	case Le:
		return c <= 0
	case Gt:
		return c > 0
	case Ge:
		return c >= 0
	}
	return false
}

// Atom is one conjunct of a predicate.
type Atom interface {
	atomString() string
}

// Cmp compares column Col of relation Rel against the constant Val.
// Rel is a caller-chosen relation slot (0 for single-relation
// predicates; 0 and 1 for the two sides of a join view).
type Cmp struct {
	Rel int
	Col int
	Op  Op
	Val tuple.Value
}

func (c Cmp) atomString() string {
	return fmt.Sprintf("r%d.c%d %s %s", c.Rel, c.Col, c.Op, c.Val)
}

// JoinEq is an equi-join atom: relation LRel's column LCol equals
// relation RRel's column RCol.
type JoinEq struct {
	LRel, LCol int
	RRel, RCol int
}

func (j JoinEq) atomString() string {
	return fmt.Sprintf("r%d.c%d = r%d.c%d", j.LRel, j.LCol, j.RRel, j.RCol)
}

// P is a predicate: the conjunction of its atoms. An empty P is true.
type P struct {
	Atoms []Atom
}

// New builds a predicate from atoms.
func New(atoms ...Atom) *P { return &P{Atoms: atoms} }

// True is the empty (always-true) predicate.
func True() *P { return &P{} }

// And returns a new predicate with the extra atoms appended.
func (p *P) And(atoms ...Atom) *P {
	out := &P{Atoms: make([]Atom, 0, len(p.Atoms)+len(atoms))}
	out.Atoms = append(out.Atoms, p.Atoms...)
	out.Atoms = append(out.Atoms, atoms...)
	return out
}

// String renders the predicate.
func (p *P) String() string {
	if len(p.Atoms) == 0 {
		return "true"
	}
	parts := make([]string, len(p.Atoms))
	for i, a := range p.Atoms {
		parts[i] = a.atomString()
	}
	return strings.Join(parts, " and ")
}

// EvalSingle evaluates the predicate against a tuple bound to relation
// slot rel, considering only comparison atoms on that relation. Join
// atoms and atoms on other relations are ignored (treated as true).
// This is the per-tuple restriction test: "does t satisfy the clauses
// of the view predicate that mention t's relation".
func (p *P) EvalSingle(rel int, t tuple.Tuple) bool {
	for _, a := range p.Atoms {
		c, ok := a.(Cmp)
		if !ok || c.Rel != rel {
			continue
		}
		if !c.Op.holds(t.Vals[c.Col], c.Val) {
			return false
		}
	}
	return true
}

// Eval evaluates the full predicate given a binding of relation slots
// to tuples. All atoms must be decidable under the binding; an atom
// referencing an unbound slot makes Eval return false.
func (p *P) Eval(binding map[int]tuple.Tuple) bool {
	for _, a := range p.Atoms {
		switch at := a.(type) {
		case Cmp:
			t, ok := binding[at.Rel]
			if !ok || !at.Op.holds(t.Vals[at.Col], at.Val) {
				return false
			}
		case JoinEq:
			l, lok := binding[at.LRel]
			r, rok := binding[at.RRel]
			if !lok || !rok || !tuple.Equal(l.Vals[at.LCol], r.Vals[at.RCol]) {
				return false
			}
		}
	}
	return true
}

// EvalJoined evaluates the full predicate against a two-slot binding
// (slot 0 = t0, slot 1 = t1) without building the map Eval takes —
// the allocation-free form joined-row screening uses. Atoms
// referencing slots outside 0..1 make it false, matching Eval over an
// unbound slot.
func (p *P) EvalJoined(t0, t1 tuple.Tuple) bool {
	slot := func(i int) (tuple.Tuple, bool) {
		switch i {
		case 0:
			return t0, true
		case 1:
			return t1, true
		}
		return tuple.Tuple{}, false
	}
	for _, a := range p.Atoms {
		switch at := a.(type) {
		case Cmp:
			t, ok := slot(at.Rel)
			if !ok || !at.Op.holds(t.Vals[at.Col], at.Val) {
				return false
			}
		case JoinEq:
			l, lok := slot(at.LRel)
			r, rok := slot(at.RRel)
			if !lok || !rok || !tuple.Equal(l.Vals[at.LCol], r.Vals[at.RCol]) {
				return false
			}
		}
	}
	return true
}

// SatisfiableWith is the second-stage screening test: substitute tuple
// t for relation slot rel and report whether the residual predicate is
// still satisfiable. Comparison atoms on rel are decided directly; the
// residual conjunction over the remaining slots is checked by interval
// intersection per (relation, column), with join atoms propagating the
// substituted tuple's value onto the partner column.
//
// The test is complete for this atom language: a conjunction of
// comparisons is satisfiable iff every column's interval is nonempty
// and no Ne atom pins an Eq-pinned value.
func (p *P) SatisfiableWith(rel int, t tuple.Tuple) bool {
	// Stage 1: decide atoms fully bound by t.
	for _, a := range p.Atoms {
		if c, ok := a.(Cmp); ok && c.Rel == rel {
			if !c.Op.holds(t.Vals[c.Col], c.Val) {
				return false
			}
		}
	}
	// Stage 2: build intervals for unbound columns. Join atoms against
	// the bound relation pin the partner column to the tuple's value.
	type colRef struct{ rel, col int }
	ranges := map[colRef]*Range{}
	rangeFor := func(r, c int) *Range {
		key := colRef{r, c}
		rg, ok := ranges[key]
		if !ok {
			rg = FullRange()
			ranges[key] = rg
		}
		return rg
	}
	for _, a := range p.Atoms {
		switch at := a.(type) {
		case Cmp:
			if at.Rel == rel {
				continue
			}
			if !rangeFor(at.Rel, at.Col).Restrict(at.Op, at.Val) {
				return false
			}
		case JoinEq:
			switch {
			case at.LRel == rel && at.RRel != rel:
				if !rangeFor(at.RRel, at.RCol).Restrict(Eq, t.Vals[at.LCol]) {
					return false
				}
			case at.RRel == rel && at.LRel != rel:
				if !rangeFor(at.LRel, at.LCol).Restrict(Eq, t.Vals[at.RCol]) {
					return false
				}
			case at.LRel == rel && at.RRel == rel:
				if !tuple.Equal(t.Vals[at.LCol], t.Vals[at.RCol]) {
					return false
				}
			default:
				// Join between two unbound relations: satisfiable as
				// long as each side's interval stays nonempty, which
				// the per-column ranges already track conservatively.
			}
		}
	}
	return true
}

// IntervalFor extracts the closed-open value interval implied by the
// predicate for the given relation slot and column. It is used to place
// t-locks: the returned range covers every value of (rel, col) that a
// tuple satisfying the predicate could have. ok is false when the
// predicate does not constrain the column at all (the t-lock must then
// cover the whole index).
func (p *P) IntervalFor(rel, col int) (rg Range, constrained bool) {
	r := FullRange()
	for _, a := range p.Atoms {
		c, ok := a.(Cmp)
		if !ok || c.Rel != rel || c.Col != col || c.Op == Ne {
			continue
		}
		constrained = true
		r.Restrict(c.Op, c.Val)
	}
	return *r, constrained
}

// RelationsMentioned returns the set of relation slots referenced.
func (p *P) RelationsMentioned() map[int]bool {
	out := map[int]bool{}
	for _, a := range p.Atoms {
		switch at := a.(type) {
		case Cmp:
			out[at.Rel] = true
		case JoinEq:
			out[at.LRel] = true
			out[at.RRel] = true
		}
	}
	return out
}

// ColumnsRead returns, for the given relation slot, the set of column
// positions the predicate reads. This is the compile-time half of the
// readily-ignorable-update (RIU) test of [Bune79]: a command that
// writes none of these columns cannot change the view.
func (p *P) ColumnsRead(rel int) map[int]bool {
	out := map[int]bool{}
	for _, a := range p.Atoms {
		switch at := a.(type) {
		case Cmp:
			if at.Rel == rel {
				out[at.Col] = true
			}
		case JoinEq:
			if at.LRel == rel {
				out[at.LCol] = true
			}
			if at.RRel == rel {
				out[at.RCol] = true
			}
		}
	}
	return out
}

// --- ranges --------------------------------------------------------------

// Range is a (possibly half-open) interval over tuple values, with
// inclusive/exclusive bounds. A nil bound means unbounded on that side.
type Range struct {
	Lo, Hi       *tuple.Value
	LoInc, HiInc bool
	// excluded values from Ne atoms matter for emptiness only when the
	// range is pinned to a single point.
	excluded []tuple.Value
}

// FullRange returns the unbounded range.
func FullRange() *Range { return &Range{LoInc: true, HiInc: true} }

// PointRange returns the range containing exactly v.
func PointRange(v tuple.Value) *Range {
	return &Range{Lo: &v, Hi: &v, LoInc: true, HiInc: true}
}

// NewRange returns the range [lo, hi) or [lo, hi] as requested.
func NewRange(lo, hi tuple.Value, loInc, hiInc bool) *Range {
	return &Range{Lo: &lo, Hi: &hi, LoInc: loInc, HiInc: hiInc}
}

// Restrict narrows the range by "col op v" and reports whether the
// range is still (possibly) nonempty.
func (r *Range) Restrict(op Op, v tuple.Value) bool {
	switch op {
	case Eq:
		r.tightenLo(v, true)
		r.tightenHi(v, true)
	case Lt:
		r.tightenHi(v, false)
	case Le:
		r.tightenHi(v, true)
	case Gt:
		r.tightenLo(v, false)
	case Ge:
		r.tightenLo(v, true)
	case Ne:
		r.excluded = append(r.excluded, v)
	}
	return !r.Empty()
}

func (r *Range) tightenLo(v tuple.Value, inc bool) {
	if r.Lo == nil {
		val := v
		r.Lo, r.LoInc = &val, inc
		return
	}
	c := tuple.Compare(v, *r.Lo)
	if c > 0 || (c == 0 && r.LoInc && !inc) {
		val := v
		r.Lo, r.LoInc = &val, inc
	}
}

func (r *Range) tightenHi(v tuple.Value, inc bool) {
	if r.Hi == nil {
		val := v
		r.Hi, r.HiInc = &val, inc
		return
	}
	c := tuple.Compare(v, *r.Hi)
	if c < 0 || (c == 0 && r.HiInc && !inc) {
		val := v
		r.Hi, r.HiInc = &val, inc
	}
}

// Empty reports whether the range provably contains no value.
func (r *Range) Empty() bool {
	if r.Lo == nil || r.Hi == nil {
		return false
	}
	c := tuple.Compare(*r.Lo, *r.Hi)
	if c > 0 {
		return true
	}
	if c == 0 {
		if !r.LoInc || !r.HiInc {
			return true
		}
		for _, ex := range r.excluded {
			if tuple.Equal(ex, *r.Lo) {
				return true
			}
		}
	}
	return false
}

// Contains reports whether v lies in the range.
func (r *Range) Contains(v tuple.Value) bool {
	if r.Lo != nil {
		c := tuple.Compare(v, *r.Lo)
		if c < 0 || (c == 0 && !r.LoInc) {
			return false
		}
	}
	if r.Hi != nil {
		c := tuple.Compare(v, *r.Hi)
		if c > 0 || (c == 0 && !r.HiInc) {
			return false
		}
	}
	for _, ex := range r.excluded {
		if tuple.Equal(ex, v) {
			return false
		}
	}
	return true
}

// Overlaps reports whether two ranges share at least one point
// (conservatively: exclusions are ignored unless they empty a point
// range, which Empty already handles).
func (r *Range) Overlaps(o *Range) bool {
	if r.Empty() || o.Empty() {
		return false
	}
	// r ends before o starts?
	if r.Hi != nil && o.Lo != nil {
		c := tuple.Compare(*r.Hi, *o.Lo)
		if c < 0 || (c == 0 && (!r.HiInc || !o.LoInc)) {
			return false
		}
	}
	// o ends before r starts?
	if o.Hi != nil && r.Lo != nil {
		c := tuple.Compare(*o.Hi, *r.Lo)
		if c < 0 || (c == 0 && (!o.HiInc || !r.LoInc)) {
			return false
		}
	}
	return true
}

// String renders the range.
func (r *Range) String() string {
	var b strings.Builder
	if r.LoInc {
		b.WriteByte('[')
	} else {
		b.WriteByte('(')
	}
	if r.Lo == nil {
		b.WriteString("-inf")
	} else {
		b.WriteString(r.Lo.String())
	}
	b.WriteString(", ")
	if r.Hi == nil {
		b.WriteString("+inf")
	} else {
		b.WriteString(r.Hi.String())
	}
	if r.HiInc {
		b.WriteByte(']')
	} else {
		b.WriteByte(')')
	}
	return b.String()
}
