package pred

import (
	"testing"
	"testing/quick"

	"viewmat/internal/tuple"
)

func TestOpHolds(t *testing.T) {
	tests := []struct {
		op   Op
		a, b int64
		want bool
	}{
		{Eq, 5, 5, true}, {Eq, 5, 6, false},
		{Ne, 5, 6, true}, {Ne, 5, 5, false},
		{Lt, 4, 5, true}, {Lt, 5, 5, false},
		{Le, 5, 5, true}, {Le, 6, 5, false},
		{Gt, 6, 5, true}, {Gt, 5, 5, false},
		{Ge, 5, 5, true}, {Ge, 4, 5, false},
	}
	for _, tc := range tests {
		if got := tc.op.holds(tuple.I(tc.a), tuple.I(tc.b)); got != tc.want {
			t.Errorf("%d %s %d = %v, want %v", tc.a, tc.op, tc.b, got, tc.want)
		}
	}
}

func TestEvalSingle(t *testing.T) {
	// view predicate: r0.c0 >= 10 and r0.c0 < 20 and r1.c1 = 5
	p := New(
		Cmp{Rel: 0, Col: 0, Op: Ge, Val: tuple.I(10)},
		Cmp{Rel: 0, Col: 0, Op: Lt, Val: tuple.I(20)},
		Cmp{Rel: 1, Col: 1, Op: Eq, Val: tuple.I(5)},
	)
	in := tuple.New(1, tuple.I(15))
	out := tuple.New(2, tuple.I(25))
	if !p.EvalSingle(0, in) {
		t.Error("tuple inside range rejected")
	}
	if p.EvalSingle(0, out) {
		t.Error("tuple outside range accepted")
	}
	// Atoms on rel 1 must not affect rel-0 evaluation.
	if !p.EvalSingle(0, tuple.New(3, tuple.I(10))) {
		t.Error("boundary tuple rejected")
	}
	// Rel-1 evaluation only sees its own atom (col 1).
	if !p.EvalSingle(1, tuple.New(4, tuple.I(0), tuple.I(5))) {
		t.Error("rel-1 tuple satisfying its atom rejected")
	}
}

func TestEvalFullBinding(t *testing.T) {
	// r0.c1 = r1.c0 and r0.c0 > 3
	p := New(
		JoinEq{LRel: 0, LCol: 1, RRel: 1, RCol: 0},
		Cmp{Rel: 0, Col: 0, Op: Gt, Val: tuple.I(3)},
	)
	r0 := tuple.New(1, tuple.I(7), tuple.I(42))
	r1match := tuple.New(2, tuple.I(42), tuple.S("x"))
	r1miss := tuple.New(3, tuple.I(43), tuple.S("y"))
	if !p.Eval(map[int]tuple.Tuple{0: r0, 1: r1match}) {
		t.Error("joining pair rejected")
	}
	if p.Eval(map[int]tuple.Tuple{0: r0, 1: r1miss}) {
		t.Error("non-joining pair accepted")
	}
	if p.Eval(map[int]tuple.Tuple{0: r0}) {
		t.Error("unbound join slot must not evaluate true")
	}
}

func TestSatisfiableWithSelection(t *testing.T) {
	// Single-relation predicate: substitution decides everything.
	p := New(Cmp{Rel: 0, Col: 0, Op: Eq, Val: tuple.I(5)})
	if !p.SatisfiableWith(0, tuple.New(1, tuple.I(5))) {
		t.Error("matching tuple screened out")
	}
	if p.SatisfiableWith(0, tuple.New(2, tuple.I(6))) {
		t.Error("non-matching tuple passed screen")
	}
}

func TestSatisfiableWithJoinResidual(t *testing.T) {
	// V: r0.a = 5 and r0.b = r1.b (the paper's §2.1 example).
	p := New(
		Cmp{Rel: 0, Col: 0, Op: Eq, Val: tuple.I(5)},
		JoinEq{LRel: 0, LCol: 1, RRel: 1, RCol: 0},
	)
	// Tuple satisfying its own clauses: residual r1.b = const is
	// satisfiable, so the tuple passes.
	if !p.SatisfiableWith(0, tuple.New(1, tuple.I(5), tuple.I(9))) {
		t.Error("screening rejected a tuple that could join")
	}
	// Tuple failing its restriction is screened out immediately.
	if p.SatisfiableWith(0, tuple.New(2, tuple.I(4), tuple.I(9))) {
		t.Error("screening passed a tuple failing its restriction")
	}
	// Substituting on the other side: residual pins r0.b; combined with
	// a contradictory restriction on r0.b the residual is unsatisfiable.
	p2 := p.And(Cmp{Rel: 0, Col: 1, Op: Lt, Val: tuple.I(3)})
	if p2.SatisfiableWith(1, tuple.New(3, tuple.I(9))) {
		t.Error("residual r0.b=9 and r0.b<3 should be unsatisfiable")
	}
	if !p2.SatisfiableWith(1, tuple.New(4, tuple.I(2))) {
		t.Error("residual r0.b=2 and r0.b<3 should be satisfiable")
	}
}

func TestSatisfiableWithSelfJoinAtom(t *testing.T) {
	p := New(JoinEq{LRel: 0, LCol: 0, RRel: 0, RCol: 1})
	if !p.SatisfiableWith(0, tuple.New(1, tuple.I(4), tuple.I(4))) {
		t.Error("equal columns rejected")
	}
	if p.SatisfiableWith(0, tuple.New(2, tuple.I(4), tuple.I(5))) {
		t.Error("unequal columns accepted")
	}
}

func TestSatisfiableContradictoryResidual(t *testing.T) {
	// Residual atoms on an unbound relation that contradict each other.
	p := New(
		Cmp{Rel: 1, Col: 0, Op: Gt, Val: tuple.I(10)},
		Cmp{Rel: 1, Col: 0, Op: Lt, Val: tuple.I(5)},
	)
	if p.SatisfiableWith(0, tuple.New(1, tuple.I(1))) {
		t.Error("contradictory residual reported satisfiable")
	}
}

func TestIntervalFor(t *testing.T) {
	p := New(
		Cmp{Rel: 0, Col: 0, Op: Ge, Val: tuple.I(10)},
		Cmp{Rel: 0, Col: 0, Op: Lt, Val: tuple.I(20)},
		Cmp{Rel: 0, Col: 1, Op: Eq, Val: tuple.S("x")},
	)
	rg, ok := p.IntervalFor(0, 0)
	if !ok {
		t.Fatal("col 0 should be constrained")
	}
	for _, v := range []int64{10, 15, 19} {
		if !rg.Contains(tuple.I(v)) {
			t.Errorf("%d should be in %s", v, rg.String())
		}
	}
	for _, v := range []int64{9, 20, 100} {
		if rg.Contains(tuple.I(v)) {
			t.Errorf("%d should not be in %s", v, rg.String())
		}
	}
	if _, ok := p.IntervalFor(0, 5); ok {
		t.Error("unconstrained column reported constrained")
	}
	if _, ok := p.IntervalFor(1, 0); ok {
		t.Error("other relation reported constrained")
	}
}

func TestColumnsRead(t *testing.T) {
	p := New(
		Cmp{Rel: 0, Col: 2, Op: Eq, Val: tuple.I(1)},
		JoinEq{LRel: 0, LCol: 1, RRel: 1, RCol: 0},
	)
	got := p.ColumnsRead(0)
	if !got[2] || !got[1] || len(got) != 2 {
		t.Errorf("ColumnsRead(0) = %v", got)
	}
	got1 := p.ColumnsRead(1)
	if !got1[0] || len(got1) != 1 {
		t.Errorf("ColumnsRead(1) = %v", got1)
	}
}

func TestRangeRestrict(t *testing.T) {
	r := FullRange()
	if !r.Restrict(Ge, tuple.I(0)) || !r.Restrict(Lt, tuple.I(10)) {
		t.Fatal("restrictions emptied a live range")
	}
	if r.Contains(tuple.I(-1)) || !r.Contains(tuple.I(0)) || !r.Contains(tuple.I(9)) || r.Contains(tuple.I(10)) {
		t.Errorf("range %s has wrong membership", r.String())
	}
	if r.Restrict(Gt, tuple.I(20)) {
		t.Error("contradictory restriction left range nonempty")
	}
}

func TestRangeEqThenNe(t *testing.T) {
	r := FullRange()
	r.Restrict(Eq, tuple.I(5))
	if r.Restrict(Ne, tuple.I(5)) {
		t.Error("x=5 and x!=5 should be empty")
	}
	r2 := FullRange()
	r2.Restrict(Eq, tuple.I(5))
	if !r2.Restrict(Ne, tuple.I(6)) {
		t.Error("x=5 and x!=6 should be satisfiable")
	}
}

func TestRangeExclusiveBoundsAtPoint(t *testing.T) {
	r := FullRange()
	r.Restrict(Ge, tuple.I(5))
	if !r.Restrict(Le, tuple.I(5)) {
		t.Error("[5,5] should be nonempty")
	}
	r2 := FullRange()
	r2.Restrict(Ge, tuple.I(5))
	if r2.Restrict(Lt, tuple.I(5)) {
		t.Error("[5,5) should be empty")
	}
	// Exclusive replaces inclusive at the same bound.
	r3 := FullRange()
	r3.Restrict(Le, tuple.I(5))
	r3.Restrict(Lt, tuple.I(5))
	if r3.Contains(tuple.I(5)) {
		t.Error("tightening to exclusive must exclude the bound")
	}
}

func TestRangeOverlaps(t *testing.T) {
	a := NewRange(tuple.I(0), tuple.I(10), true, false)
	b := NewRange(tuple.I(10), tuple.I(20), true, false)
	c := NewRange(tuple.I(5), tuple.I(7), true, true)
	if a.Overlaps(b) {
		t.Error("[0,10) and [10,20) must not overlap")
	}
	if !a.Overlaps(c) || !c.Overlaps(a) {
		t.Error("[0,10) and [5,7] must overlap")
	}
	closedA := NewRange(tuple.I(0), tuple.I(10), true, true)
	if !closedA.Overlaps(b) {
		t.Error("[0,10] and [10,20) must overlap at 10")
	}
	full := FullRange()
	if !full.Overlaps(a) || !a.Overlaps(full) {
		t.Error("full range overlaps everything")
	}
}

func TestPointRange(t *testing.T) {
	r := PointRange(tuple.I(7))
	if !r.Contains(tuple.I(7)) || r.Contains(tuple.I(8)) {
		t.Errorf("point range wrong: %s", r.String())
	}
}

// Property: SatisfiableWith agrees with Eval on fully-bound
// single-relation predicates (substitution decides everything, so
// satisfiability == truth).
func TestPropertySatisfiableMatchesEvalSingleRel(t *testing.T) {
	f := func(v, lo, hi int64) bool {
		p := New(
			Cmp{Rel: 0, Col: 0, Op: Ge, Val: tuple.I(lo)},
			Cmp{Rel: 0, Col: 0, Op: Lt, Val: tuple.I(hi)},
		)
		tp := tuple.New(1, tuple.I(v))
		return p.SatisfiableWith(0, tp) == p.EvalSingle(0, tp)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Contains is consistent with Restrict — after restricting a
// full range by "op v", a value w is contained iff "w op v" holds.
func TestPropertyRestrictContains(t *testing.T) {
	ops := []Op{Eq, Lt, Le, Gt, Ge}
	f := func(opIdx uint8, v, w int64) bool {
		op := ops[int(opIdx)%len(ops)]
		r := FullRange()
		r.Restrict(op, tuple.I(v))
		return r.Contains(tuple.I(w)) == op.holds(tuple.I(w), tuple.I(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Overlaps is symmetric.
func TestPropertyOverlapsSymmetric(t *testing.T) {
	f := func(a1, a2, b1, b2 int64, inc uint8) bool {
		if a1 > a2 {
			a1, a2 = a2, a1
		}
		if b1 > b2 {
			b1, b2 = b2, b1
		}
		ra := NewRange(tuple.I(a1), tuple.I(a2), inc&1 == 0, inc&2 == 0)
		rb := NewRange(tuple.I(b1), tuple.I(b2), inc&4 == 0, inc&8 == 0)
		return ra.Overlaps(rb) == rb.Overlaps(ra)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPredicateString(t *testing.T) {
	if got := True().String(); got != "true" {
		t.Errorf("True().String() = %q", got)
	}
	p := New(Cmp{Rel: 0, Col: 1, Op: Le, Val: tuple.I(9)}, JoinEq{LRel: 0, LCol: 0, RRel: 1, RCol: 0})
	want := "r0.c1 <= 9 and r0.c0 = r1.c0"
	if got := p.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestOpStringAll(t *testing.T) {
	want := map[Op]string{Eq: "=", Ne: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">=", Op(9): "op(9)"}
	for op, s := range want {
		if got := op.String(); got != s {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, s)
		}
	}
}

func TestRelationsMentioned(t *testing.T) {
	p := New(
		Cmp{Rel: 0, Col: 0, Op: Eq, Val: tuple.I(1)},
		JoinEq{LRel: 1, LCol: 0, RRel: 2, RCol: 0},
	)
	got := p.RelationsMentioned()
	if len(got) != 3 || !got[0] || !got[1] || !got[2] {
		t.Errorf("RelationsMentioned = %v", got)
	}
	if got := True().RelationsMentioned(); len(got) != 0 {
		t.Errorf("True mentions %v", got)
	}
}

func TestRangeString(t *testing.T) {
	cases := []struct {
		rg   *Range
		want string
	}{
		{FullRange(), "[-inf, +inf]"},
		{NewRange(tuple.I(1), tuple.I(5), true, false), "[1, 5)"},
		{NewRange(tuple.I(1), tuple.I(5), false, true), "(1, 5]"},
		{PointRange(tuple.S("x")), `["x", "x"]`},
	}
	for _, tc := range cases {
		if got := tc.rg.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}
