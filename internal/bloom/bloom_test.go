package bloom

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(1024, 4)
	keys := make([]string, 200)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		f.Add(keys[i])
	}
	for _, k := range keys {
		if !f.MayContain(k) {
			t.Errorf("false negative for %q", k)
		}
	}
}

func TestAbsentKeysMostlyRejected(t *testing.T) {
	f := NewForRate(1000, 0.01)
	for i := 0; i < 1000; i++ {
		f.Add(fmt.Sprintf("present-%d", i))
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if f.MayContain(fmt.Sprintf("absent-%d", i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 {
		t.Errorf("false-positive rate %.4f exceeds 3x target of 0.01", rate)
	}
}

func TestReset(t *testing.T) {
	f := New(256, 3)
	f.Add("a")
	f.Add("b")
	if f.Len() != 2 {
		t.Errorf("Len = %d, want 2", f.Len())
	}
	f.Reset()
	if f.Len() != 0 {
		t.Errorf("Len after reset = %d", f.Len())
	}
	if f.MayContain("a") {
		t.Error("reset filter still reports membership")
	}
	if f.FillRatio() != 0 {
		t.Errorf("fill ratio after reset = %v", f.FillRatio())
	}
}

func TestNewForRateSizing(t *testing.T) {
	f := NewForRate(1000, 0.01)
	// Optimal m ≈ 9.6 bits/key, k ≈ 7.
	if f.Bits() < 9000 || f.Bits() > 10100 {
		t.Errorf("Bits = %d, want ≈9600", f.Bits())
	}
	if f.Hashes() < 6 || f.Hashes() > 8 {
		t.Errorf("Hashes = %d, want ≈7", f.Hashes())
	}
}

func TestDegenerateParamsClamped(t *testing.T) {
	f := New(0, 0)
	f.Add("x")
	if !f.MayContain("x") {
		t.Error("clamped filter lost a key")
	}
	f2 := NewForRate(0, 2.0)
	f2.Add("y")
	if !f2.MayContain("y") {
		t.Error("clamped NewForRate filter lost a key")
	}
}

func TestEstimatedFPRateGrowsWithLoad(t *testing.T) {
	f := New(512, 4)
	prev := f.EstimatedFPRate()
	for i := 0; i < 300; i++ {
		f.Add(fmt.Sprintf("k%d", i))
	}
	if got := f.EstimatedFPRate(); got <= prev {
		t.Errorf("fp rate did not grow: %v -> %v", prev, got)
	}
}

// Property: adding never causes a false negative, for arbitrary keys.
func TestPropertyNoFalseNegatives(t *testing.T) {
	f := New(4096, 5)
	fn := func(keys []string) bool {
		f.Reset()
		for _, k := range keys {
			f.Add(k)
		}
		for _, k := range keys {
			if !f.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkAdd(b *testing.B) {
	f := NewForRate(100000, 0.01)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Add("some-key-12345")
	}
}

func BenchmarkMayContain(b *testing.B) {
	f := NewForRate(100000, 0.01)
	for i := 0; i < 1000; i++ {
		f.Add(fmt.Sprintf("k%d", i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.MayContain("k500")
	}
}
