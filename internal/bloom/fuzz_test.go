package bloom

import "testing"

// FuzzBloom feeds arbitrary add/test sequences to the filter and
// enforces its one hard guarantee: no false negatives. A key that was
// added since the last Reset must always test positive, no matter what
// else was added, how small the filter is, or how many hash functions
// it uses.
func FuzzBloom(f *testing.F) {
	f.Add([]byte("\x00ab\x02cd\x05efgh"), uint16(64), uint8(3))
	f.Add([]byte("\xff\xff\xff\xff"), uint16(0), uint8(0))
	f.Add([]byte("\x01k\x02k\x01k"), uint16(9), uint8(200))
	f.Fuzz(func(t *testing.T, data []byte, m uint16, k uint8) {
		fl := New(uint64(m)%4096+1, int(k)%16+1)
		added := map[string]bool{}
		adds := 0
		for len(data) > 1 {
			op := data[0]
			data = data[1:]
			n := 1 + int(op>>4)
			if n > len(data) {
				n = len(data)
			}
			key := string(data[:n])
			data = data[n:]
			switch op % 3 {
			case 0, 1:
				fl.Add(key)
				added[key] = true
				adds++
			case 2:
				if added[key] && !fl.MayContain(key) {
					t.Fatalf("false negative for %q mid-sequence", key)
				}
			}
			if added[key] && !fl.MayContain(key) {
				t.Fatalf("false negative for %q immediately after ops", key)
			}
		}
		for key := range added {
			if !fl.MayContain(key) {
				t.Fatalf("false negative for %q after the whole sequence", key)
			}
		}
		if fl.Len() != adds {
			t.Fatalf("Len = %d after %d adds", fl.Len(), adds)
		}
		fl.Reset()
		if fl.Len() != 0 {
			t.Fatalf("Len = %d after Reset", fl.Len())
		}
		// The reset filter is a working filter.
		fl.Add("post-reset")
		if !fl.MayContain("post-reset") {
			t.Fatal("false negative after Reset")
		}
	})
}
