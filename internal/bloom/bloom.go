// Package bloom implements the Bloom filter [Bloo70] used to screen
// accesses to differential files, following the design of Severance and
// Lohman [Seve76] that Hanson adopts for hypothetical relations (§2.2.2):
// before probing the AD file for a key, the filter is consulted; a zero
// bit proves the key absent, so the base relation can be read directly
// with no extra I/O. The false-positive rate — the probability of a
// wasted AD probe — can be made arbitrarily small by increasing the
// bit-array size m.
package bloom

import (
	"fmt"
	"hash/fnv"
	"math"
)

// Filter is a classic Bloom filter with double hashing. The zero value
// is not usable; construct with New or NewForRate.
type Filter struct {
	bits   []uint64
	m      uint64 // number of bits
	k      int    // number of hash functions
	n      int    // number of keys added since last reset
	adds   uint64 // lifetime adds (for diagnostics)
	resets uint64 // lifetime resets
}

// New creates a filter with m bits and k hash functions. m is rounded
// up to a multiple of 64; m and k must be positive.
func New(m uint64, k int) *Filter {
	if m == 0 {
		m = 64
	}
	if k <= 0 {
		k = 1
	}
	words := (m + 63) / 64
	return &Filter{bits: make([]uint64, words), m: words * 64, k: k}
}

// NewForRate sizes a filter for an expected number of keys and a target
// false-positive rate using the standard optima
//
//	m = -n·ln(p)/(ln 2)²,  k = (m/n)·ln 2.
//
// This is the "design a Bloom filter with any desired ability to screen
// out accesses" knob of [Seve76] that the paper invokes to justify
// counting a single I/O per HR read.
func NewForRate(expectedKeys int, fpRate float64) *Filter {
	if expectedKeys < 1 {
		expectedKeys = 1
	}
	if fpRate <= 0 || fpRate >= 1 {
		fpRate = 0.01
	}
	ln2 := math.Ln2
	m := math.Ceil(-float64(expectedKeys) * math.Log(fpRate) / (ln2 * ln2))
	k := int(math.Round(m / float64(expectedKeys) * ln2))
	if k < 1 {
		k = 1
	}
	return New(uint64(m), k)
}

// hash2 derives two independent 64-bit hashes of the key; the k probe
// positions are h1 + i·h2 (Kirsch–Mitzenmacher double hashing).
func hash2(key string) (uint64, uint64) {
	h := fnv.New64a()
	h.Write([]byte(key))
	h1 := h.Sum64()
	h.Write([]byte{0x9e, 0x37, 0x79, 0xb9}) // golden-ratio salt
	h2 := h.Sum64() | 1                     // odd, so probes cover all residues
	return h1, h2
}

// Add inserts a key.
func (f *Filter) Add(key string) {
	h1, h2 := hash2(key)
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.m
		f.bits[bit/64] |= 1 << (bit % 64)
	}
	f.n++
	f.adds++
}

// MayContain reports whether the key might be present. A false result
// is definitive (the key was never added since the last Reset).
func (f *Filter) MayContain(key string) bool {
	h1, h2 := hash2(key)
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.m
		if f.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// Reset clears the filter; the paper resets it when the hypothetical
// relation is folded into the base relation after a deferred refresh
// (A := ∅, D := ∅).
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.n = 0
	f.resets++
}

// Len returns the number of keys added since the last Reset.
func (f *Filter) Len() int { return f.n }

// Bits returns the filter's bit capacity.
func (f *Filter) Bits() uint64 { return f.m }

// Hashes returns the number of hash probes per key.
func (f *Filter) Hashes() int { return f.k }

// FillRatio returns the fraction of bits set.
func (f *Filter) FillRatio() float64 {
	var set int
	for _, w := range f.bits {
		set += popcount(w)
	}
	return float64(set) / float64(f.m)
}

// EstimatedFPRate returns the expected false-positive probability for
// the current fill: (fraction of bits set)^k.
func (f *Filter) EstimatedFPRate() float64 {
	return math.Pow(f.FillRatio(), float64(f.k))
}

// String summarizes the filter state.
func (f *Filter) String() string {
	return fmt.Sprintf("bloom{m=%d k=%d n=%d fill=%.3f}", f.m, f.k, f.n, f.FillRatio())
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
