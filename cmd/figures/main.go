// Command figures regenerates every figure and table from the paper's
// evaluation section (see DESIGN.md's per-experiment index):
//
//	figures -fig all            # every figure, text rendering
//	figures -fig 5              # one figure
//	figures -fig 2 -format csv  # machine-readable output
//
// Figure ids: params, 1–9, empdept.
package main

import (
	"flag"
	"fmt"
	"os"

	"viewmat/internal/costmodel"
	"viewmat/internal/figures"
	"viewmat/internal/report"
	"viewmat/internal/sim"
)

func main() {
	fig := flag.String("fig", "all", "figure id (params, 1-9, empdept) or 'all'")
	format := flag.String("format", "text", "output format: text or csv")
	measured := flag.Bool("measured", false, "regenerate figures 1, 5 and 8 from measured engine runs (scaled N) instead of the analytic model")
	scaleN := flag.Float64("n", 3000, "relation size for -measured runs")
	flag.Parse()

	if *measured {
		if err := printMeasured(*fig, *format, *scaleN); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var figs []*figures.Figure
	if *fig == "all" {
		figs = figures.All()
	} else {
		f, err := figures.ByID(*fig)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		figs = []*figures.Figure{f}
	}
	for i, f := range figs {
		if i > 0 {
			fmt.Println()
		}
		switch *format {
		case "csv":
			fmt.Print(report.CSV(f))
		default:
			fmt.Print(report.Render(f))
		}
	}
}

// printMeasured regenerates the P- and l-axis figures from engine runs
// at a reduced scale (measured scope cost next to the model's
// prediction at the same scaled parameters).
func printMeasured(fig, format string, n float64) error {
	base := costmodel.Default()
	base.N = n
	base.K, base.Q, base.L = 20, 20, 10

	emit := func(f *figures.Figure) {
		if format == "csv" {
			fmt.Print(report.CSV(f))
		} else {
			fmt.Print(report.Render(f))
		}
	}
	wantAll := fig == "all"
	ran := false
	if wantAll || fig == "1" {
		points, err := sim.SweepP(sim.Model1, base, []float64{0.1, 0.3, 0.5, 0.7, 0.9}, 1)
		if err != nil {
			return err
		}
		emit(sim.MeasuredFigure("1m", "measured Figure 1 (Model 1 vs P, scaled)", "P", points))
		ran = true
	}
	if wantAll || fig == "5" {
		points, err := sim.SweepP(sim.Model2, base, []float64{0.1, 0.3, 0.5, 0.7, 0.9}, 1)
		if err != nil {
			return err
		}
		fmt.Println()
		emit(sim.MeasuredFigure("5m", "measured Figure 5 (Model 2 vs P, scaled)", "P", points))
		ran = true
	}
	if wantAll || fig == "8" {
		points, err := sim.SweepL(base, []float64{1, 5, 10, 25}, 1)
		if err != nil {
			return err
		}
		fmt.Println()
		emit(sim.MeasuredFigure("8m", "measured Figure 8 (Model 3 vs l, scaled)", "l", points))
		ran = true
	}
	if !ran {
		return fmt.Errorf("-measured supports figures 1, 5 and 8 (got %q)", fig)
	}
	return nil
}
