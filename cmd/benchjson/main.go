// Command benchjson converts `go test -bench` output on stdin into a
// JSON object on stdout (or -o file), mapping each benchmark name to
// its ns/op plus any custom metrics (gets/s, views/s, ...). Repeated
// runs of the same benchmark (-count N) are averaged, and the sample
// count is recorded so CI artifacts stay honest about variance.
//
//	go test -run '^$' -bench 'RefreshAll|PoolConcurrent' -count 3 . ./internal/storage |
//	    go run ./cmd/benchjson -o BENCH_pool.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result accumulates samples for one benchmark name.
type result struct {
	samples int
	sums    map[string]float64 // unit -> summed value
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	results := map[string]*result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so CI logs keep the raw output
		name, metrics, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		r := results[name]
		if r == nil {
			r = &result{sums: map[string]float64{}}
			results[name] = r
		}
		r.samples++
		for unit, v := range metrics {
			r.sums[unit] += v
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	report := map[string]map[string]float64{}
	for name, r := range results {
		m := map[string]float64{"samples": float64(r.samples)}
		for unit, sum := range r.sums {
			m[unit] = sum / float64(r.samples)
		}
		report[name] = m
	}
	buf, err := json.MarshalIndent(sortedJSON(report), "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(report), *out)
}

// parseBenchLine extracts (name, {unit: value}) from one line of
// benchmark output, e.g.
//
//	BenchmarkPoolConcurrentGet/shards=16-8  12345  96.91 ns/op  8.2e+07 gets/s
//
// The fields after the iteration count alternate value/unit.
func parseBenchLine(line string) (string, map[string]float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return "", nil, false
	}
	metrics := map[string]float64{}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		metrics[fields[i+1]] = v
	}
	if len(metrics) == 0 {
		return "", nil, false
	}
	return fields[0], metrics, true
}

// sortedJSON re-keys the report through an ordered slice-backed map so
// the emitted JSON is deterministic across runs (json.Marshal already
// sorts map keys, but being explicit keeps the artifact diff-friendly
// if the representation ever changes).
func sortedJSON(report map[string]map[string]float64) map[string]map[string]float64 {
	names := make([]string, 0, len(report))
	for n := range report {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make(map[string]map[string]float64, len(report))
	for _, n := range names {
		out[n] = report[n]
	}
	return out
}
