// Command viewmatd serves a viewmat engine over TCP: many clients
// (internal/client, or anything speaking internal/proto) share one
// thread-safe core.Database through the serving layer in
// internal/server.
//
// Without flags it serves an empty volatile engine:
//
//	viewmatd -addr 127.0.0.1:7117
//
// With -wal DIR the engine is durable: if DIR holds a previous run's
// WAL and snapshot store the database is recovered from them before
// serving, otherwise a fresh durable engine is created. Every
// acknowledged commit is synced to the WAL before its response goes
// out, so a killed server restarted on the same directory answers with
// every transaction it ever acknowledged:
//
//	viewmatd -addr 127.0.0.1:7117 -wal /var/lib/viewmat
//
// SIGINT/SIGTERM trigger a graceful shutdown: in-flight requests
// finish and their responses flush before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"viewmat/internal/core"
	"viewmat/internal/server"
	"viewmat/internal/wal"
)

const (
	walFileName  = "wal.log"
	snapFileName = "snapshots.log"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7117", "listen address")
	walDir := flag.String("wal", "", "durability directory (WAL + snapshot store); empty = volatile")
	ckptEvery := flag.Int("checkpoint-every", 8, "commits between automatic checkpoints (with -wal)")
	maxInflight := flag.Int("max-inflight", 64, "admission-control cap on concurrently executing requests")
	pageSize := flag.Int("page-size", 4000, "engine page size in bytes (fresh engines only)")
	poolFrames := flag.Int("pool-frames", 256, "buffer-pool capacity in pages (fresh engines only)")
	refreshWorkers := flag.Int("refresh-workers", 4, "RefreshAll worker pool bound")
	adaptive := flag.Bool("adaptive", false, "enable the online adaptive strategy advisor")
	adaptEvery := flag.Duration("adapt-every", 2*time.Second, "interval between advisor decision rounds (with -adaptive)")
	storageBudget := flag.Int("storage-budget", 0, "page budget for materialized views under -adaptive (0 = unlimited)")
	flag.Parse()

	if err := run(*addr, *walDir, *ckptEvery, *maxInflight, *pageSize, *poolFrames, *refreshWorkers, *adaptive, *adaptEvery, *storageBudget); err != nil {
		fmt.Fprintln(os.Stderr, "viewmatd:", err)
		os.Exit(1)
	}
}

func run(addr, walDir string, ckptEvery, maxInflight, pageSize, poolFrames, refreshWorkers int, adaptive bool, adaptEvery time.Duration, storageBudget int) error {
	var db *core.Database
	if walDir == "" {
		db = core.NewDatabase(core.Options{PageSize: pageSize, PoolFrames: poolFrames, MaxRefreshWorkers: refreshWorkers})
		fmt.Println("volatile engine (no -wal): state dies with the process")
	} else {
		var err error
		db, err = openDurable(walDir, ckptEvery, pageSize, poolFrames, refreshWorkers)
		if err != nil {
			return err
		}
	}

	stopAdapt := make(chan struct{})
	if adaptive {
		if err := db.EnableAdaptive(core.AdvisorOptions{StorageBudget: storageBudget}); err != nil {
			return err
		}
		go func() {
			tick := time.NewTicker(adaptEvery)
			defer tick.Stop()
			for {
				select {
				case <-stopAdapt:
					return
				case <-tick.C:
					flips, err := db.AdaptTick()
					if err != nil {
						continue
					}
					for _, f := range flips {
						fmt.Printf("advisor: %s %s -> %s (%s)\n", f.View, f.From, f.To, f.Reason)
					}
				}
			}
		}()
		fmt.Printf("adaptive advisor on (tick %v, storage budget %d pages)\n", adaptEvery, storageBudget)
	}
	defer close(stopAdapt)

	srv := server.New(db, server.Config{
		Addr:        addr,
		MaxInflight: maxInflight,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		sig := <-sigs
		fmt.Printf("caught %v; draining in-flight requests\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()

	fmt.Printf("viewmatd listening on %s (max-inflight %d)\n", addr, maxInflight)
	if err := srv.ListenAndServe(); err != nil {
		return err
	}
	if err := <-done; err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Println("drained; bye")
	return nil
}

// openDurable recovers an engine from dir's WAL and snapshot store, or
// creates a fresh durable engine when the directory holds no usable
// snapshot yet.
func openDurable(dir string, ckptEvery, pageSize, poolFrames, refreshWorkers int) (*core.Database, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	walDev, err := wal.OpenFile(filepath.Join(dir, walFileName))
	if err != nil {
		return nil, err
	}
	snapDev, err := wal.OpenFile(filepath.Join(dir, snapFileName))
	if err != nil {
		walDev.Close()
		return nil, err
	}
	opts := core.DurabilityOptions{CheckpointEvery: ckptEvery}
	db, info, err := core.Recover(walDev, snapDev, opts)
	switch {
	case err == nil:
		db.SetMaxRefreshWorkers(refreshWorkers)
		fmt.Printf("recovered from %s: snapshot seq %d, %d records replayed, %d skipped", dir, info.SnapshotSeq, info.Replayed, info.Skipped)
		if info.TailDamage != "" {
			fmt.Printf(", %s tail truncated", info.TailDamage)
		}
		fmt.Println()
		return db, nil
	case errors.Is(err, wal.ErrNoSnapshot):
		db = core.NewDatabase(core.Options{PageSize: pageSize, PoolFrames: poolFrames, MaxRefreshWorkers: refreshWorkers})
		if err := db.EnableDurability(walDev, snapDev, opts); err != nil {
			return nil, err
		}
		fmt.Printf("fresh durable engine under %s (checkpoint every %d commits)\n", dir, ckptEvery)
		return db, nil
	default:
		return nil, fmt.Errorf("recovering from %s: %w", dir, err)
	}
}
