// Command advisor inverts the cost model: given a workload profile it
// reports, per view model, which materialization strategy is cheapest
// and how far away the nearest crossover lies. This operationalizes
// the paper's conclusion that "the choice of the most efficient view
// materialization algorithm is highly application-dependent."
//
//	advisor -p 0.5 -f 0.1 -fv 0.1 -l 25
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"viewmat/internal/costmodel"
	"viewmat/internal/report"
)

func main() {
	pP := flag.Float64("p", 0.5, "probability an operation is an update (P)")
	f := flag.Float64("f", 0.1, "view predicate selectivity (f)")
	fv := flag.Float64("fv", 0.1, "fraction of view retrieved per query (fv)")
	l := flag.Float64("l", 25, "tuples modified per transaction (l)")
	n := flag.Float64("n", 100000, "tuples in the base relation (N)")
	fr2 := flag.Float64("fr2", 0.1, "|R2|/|R1| for join views")
	c3 := flag.Float64("c3", 1, "A/D upkeep cost per tuple (C3, ms)")
	extended := flag.Bool("extended", false, "include snapshot and recompute-on-demand (Model 1 only)")
	snapEvery := flag.Float64("snapshot-every", 10, "snapshot refresh period in transactions (with -extended)")
	flag.Parse()

	p := costmodel.Default()
	p.F, p.FV, p.L, p.N, p.FR2, p.C3 = *f, *fv, *l, *n, *fr2, *c3
	p = p.WithP(*pP)
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Printf("workload: P=%.2f f=%g fv=%g l=%g N=%g (u=%.1f updated tuples per query)\n\n",
		p.P(), p.F, p.FV, p.L, p.N, p.U())

	model1 := costmodel.Model1Costs
	if *extended {
		model1 = func(q costmodel.Params) map[costmodel.Algorithm]float64 {
			return costmodel.Model1CostsExtended(q, *snapEvery)
		}
	}
	models := []struct {
		name  string
		costs func(costmodel.Params) map[costmodel.Algorithm]float64
	}{
		{"Model 1: select-project view", model1},
		{"Model 2: two-way join view", costmodel.Model2Costs},
		{"Model 3: aggregate view", costmodel.Model3Costs},
	}
	if *extended {
		fmt.Println("(extended: snapshot verdicts trade staleness of up to", *snapEvery, "transactions for cost)")
		fmt.Println()
	}
	for _, m := range models {
		costs := m.costs(p)
		best, bestCost := costmodel.Best(costs)
		fmt.Printf("%s\n", m.name)
		rows := [][]string{}
		type row struct {
			alg  costmodel.Algorithm
			cost float64
		}
		var sorted []row
		for alg, c := range costs {
			sorted = append(sorted, row{alg, c})
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].cost < sorted[j].cost })
		for _, r := range sorted {
			marker := ""
			if r.alg == best {
				marker = "  <- recommended"
			}
			rows = append(rows, []string{string(r.alg), fmt.Sprintf("%.1f", r.cost), marker})
		}
		fmt.Print(report.Table([]string{"strategy", "ms/query", ""}, rows))
		if cross, ok := nearestCrossover(p, m.costs, best); ok {
			fmt.Printf("nearest crossover: at P ≈ %.3f the recommendation changes (current P = %.2f, margin %.1f ms)\n",
				cross, p.P(), secondBestMargin(costs, bestCost))
		} else {
			fmt.Printf("recommendation stable across P for these parameters (margin %.1f ms)\n",
				secondBestMargin(costs, bestCost))
		}
		fmt.Println()
	}
}

// nearestCrossover scans P for the closest point where the best
// algorithm changes.
func nearestCrossover(p costmodel.Params, costs func(costmodel.Params) map[costmodel.Algorithm]float64, best costmodel.Algorithm) (float64, bool) {
	cur := p.P()
	bestDist := 2.0
	found := 0.0
	ok := false
	for i := 1; i < 200; i++ {
		pv := float64(i) / 200
		b, _ := costmodel.Best(costs(p.WithP(pv)))
		if b != best {
			if d := abs(pv - cur); d < bestDist {
				bestDist = d
				found = pv
				ok = true
			}
		}
	}
	return found, ok
}

func secondBestMargin(costs map[costmodel.Algorithm]float64, bestCost float64) float64 {
	margin := -1.0
	for _, c := range costs {
		if c > bestCost && (margin < 0 || c-bestCost < margin) {
			margin = c - bestCost
		}
	}
	if margin < 0 {
		return 0
	}
	return margin
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
