// Command vmsim replays a paper-style workload against the executable
// engine and reports measured cost per query next to the analytic
// model's prediction, for all three maintenance strategies:
//
//	vmsim -model 1 -n 5000 -k 20 -q 20 -l 10
//	vmsim -model 2 -f 0.2 -fv 0.05
//	vmsim -model 3 -agg sum -l 5
//
// "measured" is the whole-system average (including base-relation
// update I/O); "scope" excludes the commit-write and fold phases and is
// the number directly comparable to the model column.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"

	"viewmat/internal/agg"
	"viewmat/internal/core"
	"viewmat/internal/costmodel"
	"viewmat/internal/report"
	"viewmat/internal/sim"
	"viewmat/internal/storage"
)

func main() {
	model := flag.Int("model", 1, "view model: 1 (select-project), 2 (join), 3 (aggregate)")
	n := flag.Float64("n", 5000, "tuples in the base relation (N)")
	k := flag.Float64("k", 20, "update transactions (k)")
	q := flag.Float64("q", 20, "view queries (q)")
	l := flag.Float64("l", 10, "tuples modified per transaction (l)")
	f := flag.Float64("f", 0.1, "view predicate selectivity (f)")
	fv := flag.Float64("fv", 0.1, "fraction of view retrieved per query (fv)")
	fr2 := flag.Float64("fr2", 0.1, "|R2|/|R1| (fR2)")
	seed := flag.Int64("seed", 1, "workload seed")
	skew := flag.Float64("skew", 0, "update-key Zipf skew (0 = uniform)")
	aggName := flag.String("agg", "sum", "model-3 aggregate: count, sum, avg, min, max")
	sweep := flag.String("sweep", "", "comma-separated P values: measure all strategies at each (engine-side Figure 1/5)")
	verbose := flag.Bool("v", false, "print the per-phase cost breakdown for each strategy")
	plans := flag.Bool("plans", false, "print each strategy's last executed operator trees (query/refresh/populate)")
	allStrategies := flag.Bool("all-strategies", false, "also measure snapshot and recompute-on-demand")
	snapEvery := flag.Int("snapshot-every", 5, "snapshot refresh period in commits (with -all-strategies)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)")
	walDir := flag.String("wal", "", "run a durable demo workload with WAL+snapshots under this directory")
	recoverDir := flag.String("recover", "", "recover a database from the WAL+snapshots under this directory and report what survived")
	ckptEvery := flag.Int("checkpoint-every", 8, "commits between automatic checkpoints (with -wal/-recover)")
	batch := flag.String("batch", "on", "executor batching: on (vectorized) or off (row-at-a-time; identical results and charges)")
	page := flag.String("page", "col", "data-page layout: col (typed column chunks with zone maps) or row (row-major; identical results, charges differ only by pages zone maps prune)")
	qmPlan := flag.String("qm-plan", "auto", "query-modification access path: auto, clustered, unclustered, or sequential (sequential scans prune via zone maps under -page=col)")
	hierarchy := flag.Bool("hierarchy", false, "run the views-over-views demo: a deferred chain with shared sibling drains and heavy-light partitioning (honors -skew and -seed)")
	flag.Parse()

	if *hierarchy {
		if err := runHierarchy(*skew, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var batchSize int
	switch *batch {
	case "on":
		batchSize = 0
	case "off":
		batchSize = 1
	default:
		fmt.Fprintf(os.Stderr, "vmsim: -batch must be on or off, got %q\n", *batch)
		os.Exit(2)
	}
	if batchSize == 1 && (*sweep != "" || *allStrategies) {
		fmt.Fprintln(os.Stderr, "vmsim: -batch=off is not supported with -sweep or -all-strategies")
		os.Exit(2)
	}
	var layout storage.PageLayout
	switch *page {
	case "col":
		layout = storage.PageLayoutCol
	case "row":
		layout = storage.PageLayoutRow
	default:
		fmt.Fprintf(os.Stderr, "vmsim: -page must be col or row, got %q\n", *page)
		os.Exit(2)
	}
	if layout == storage.PageLayoutRow && (*sweep != "" || *allStrategies) {
		fmt.Fprintln(os.Stderr, "vmsim: -page=row is not supported with -sweep or -all-strategies")
		os.Exit(2)
	}
	var plan core.QueryPlan
	switch *qmPlan {
	case "auto":
		plan = core.PlanAuto
	case "clustered":
		plan = core.PlanClustered
	case "unclustered":
		plan = core.PlanUnclustered
	case "sequential":
		plan = core.PlanSequential
	default:
		fmt.Fprintf(os.Stderr, "vmsim: -qm-plan must be auto, clustered, unclustered, or sequential, got %q\n", *qmPlan)
		os.Exit(2)
	}
	if plan != core.PlanAuto && (*sweep != "" || *allStrategies) {
		fmt.Fprintln(os.Stderr, "vmsim: -qm-plan is not supported with -sweep or -all-strategies")
		os.Exit(2)
	}

	if *recoverDir != "" {
		if err := runRecover(*recoverDir, *ckptEvery); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *walDir != "" {
		if err := runWAL(*walDir, *ckptEvery, 200, 40, 5, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *cpuprofile != "" {
		pf, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}

	p := costmodel.Default()
	p.N, p.K, p.Q, p.L, p.F, p.FV, p.FR2 = *n, *k, *q, *l, *f, *fv, *fr2
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	kind, err := parseAgg(*aggName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Printf("model %d, N=%g k=%g q=%g l=%g f=%g fv=%g (P=%.2f, u=%g), seed %d\n\n",
		*model, p.N, p.K, p.Q, p.L, p.F, p.FV, p.P(), p.U(), *seed)

	if *sweep != "" {
		ps, err := parseFloats(*sweep)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		points, err := sim.SweepP(sim.Model(*model), p, ps, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fig := sim.MeasuredFigure("sweep", fmt.Sprintf("measured model-%d sweep", *model), "P", points)
		fmt.Print(report.Render(fig))
		return
	}

	rows := [][]string{}
	var cmps []sim.Comparison
	if *allStrategies {
		cmps, err = sim.CompareAll(sim.Model(*model), p, *seed, *snapEvery)
	} else {
		cmps, err = compare(sim.Model(*model), p, *seed, kind, *skew, batchSize, layout, plan)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, c := range cmps {
		rows = append(rows, []string{
			c.Strategy,
			fmt.Sprintf("%.1f", c.Measured),
			fmt.Sprintf("%.1f", c.ModelScope),
			fmt.Sprintf("%.1f", c.Model),
		})
	}
	fmt.Print(report.Table([]string{"strategy", "measured ms/query", "scope ms/query", "model ms/query"}, rows))
	fmt.Println("\nscope = measured minus base-update phases (commit-write, fold); compare to model.")
	pruned := make([]string, 0, len(cmps))
	for _, c := range cmps {
		pruned = append(pruned, fmt.Sprintf("%s %.1f/query", c.Strategy, c.PrunedPerQuery))
	}
	fmt.Printf("pages pruned (zone maps, layout=%s): %s\n", layout, strings.Join(pruned, ", "))

	if *verbose || *plans {
		for _, st := range []core.Strategy{core.QueryModification, core.Immediate, core.Deferred} {
			res, err := sim.Run(sim.Config{Model: sim.Model(*model), Strategy: st, Plan: plan, Params: p, Seed: *seed, AggKind: kind, BatchSize: batchSize, PageLayout: layout})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if *verbose {
				phases := map[string]storage.Stats{}
				for ph, s := range res.Breakdown {
					phases[string(ph)] = s
				}
				fmt.Printf("\n%s breakdown:\n", st)
				fmt.Print(report.Breakdown(phases, p.C1, p.C2, p.C3))
			}
			if *plans {
				fmt.Printf("\n%s operator trees:\n", st)
				paths := make([]string, 0, len(res.PlanTrees))
				for path := range res.PlanTrees {
					paths = append(paths, path)
				}
				sort.Strings(paths)
				for _, path := range paths {
					fmt.Printf("[%s]\n%s", path, res.PlanTrees[path])
				}
			}
		}
	}
}

func compare(model sim.Model, p costmodel.Params, seed int64, kind agg.Kind, skew float64, batchSize int, layout storage.PageLayout, plan core.QueryPlan) ([]sim.Comparison, error) {
	out := make([]sim.Comparison, 0, 3)
	for _, st := range []core.Strategy{core.QueryModification, core.Immediate, core.Deferred} {
		res, err := sim.Run(sim.Config{Model: model, Strategy: st, Plan: plan, Params: p, Seed: seed, AggKind: kind, Skew: skew, BatchSize: batchSize, PageLayout: layout})
		if err != nil {
			return nil, err
		}
		out = append(out, sim.Comparison{
			Strategy:       st.String(),
			Measured:       res.AvgPerQuery,
			ModelScope:     res.ModelScopeAvg,
			Model:          res.Model,
			PagesPruned:    res.PagesPruned,
			PrunedPerQuery: float64(res.PagesPruned) / float64(res.Queries),
		})
	}
	return out, nil
}

func parseFloats(csv string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(csv, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad sweep value %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseAgg(name string) (agg.Kind, error) {
	switch name {
	case "count":
		return agg.Count, nil
	case "sum":
		return agg.Sum, nil
	case "avg":
		return agg.Avg, nil
	case "min":
		return agg.Min, nil
	case "max":
		return agg.Max, nil
	default:
		return 0, fmt.Errorf("unknown aggregate %q", name)
	}
}
