package main

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"viewmat/internal/core"
	"viewmat/internal/pred"
	"viewmat/internal/tuple"
	"viewmat/internal/wal"
)

// The -wal / -recover modes demonstrate the durability layer on real
// files. `vmsim -wal DIR` runs a commit+query workload with the WAL
// and snapshot store under DIR — kill the process at any point —
// and `vmsim -recover DIR` rebuilds the database from whatever
// survived and reports what recovery found. The cost meter is
// untouched by either: WAL I/O lives outside the simulated disk.

const (
	walFileName  = "wal.log"
	snapFileName = "snapshots.log"
)

func openDurableFiles(dir string) (*wal.FileDevice, *wal.FileDevice, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	walDev, err := wal.OpenFile(filepath.Join(dir, walFileName))
	if err != nil {
		return nil, nil, err
	}
	snapDev, err := wal.OpenFile(filepath.Join(dir, snapFileName))
	if err != nil {
		walDev.Close()
		return nil, nil, err
	}
	return walDev, snapDev, nil
}

// demoSchema is the -wal workload's base relation: r(k, a, s)
// clustered on k, with a deferred select-project view over the middle
// half of the seeded key range.
func demoSchema() *tuple.Schema {
	return tuple.NewSchema(tuple.Col("k", tuple.Int), tuple.Col("a", tuple.Int), tuple.Col("s", tuple.String))
}

func demoViewDef(n int) core.Def {
	return core.Def{
		Name:      "v",
		Kind:      core.SelectProject,
		Relations: []string{"r"},
		Pred: pred.New(
			pred.Cmp{Rel: 0, Col: 0, Op: pred.Ge, Val: tuple.I(int64(n / 4))},
			pred.Cmp{Rel: 0, Col: 0, Op: pred.Lt, Val: tuple.I(int64(3 * n / 4))},
		),
		Project:    [][]int{{0, 2}},
		ViewKeyCol: 0,
	}
}

// runWAL seeds a fresh durable database under dir and drives commits
// and queries against it. Existing WAL/snapshot files are replaced: a
// demo run starts from scratch (use -recover to continue one).
func runWAL(dir string, ckptEvery int, n, commits, perTx int, seed int64) error {
	for _, f := range []string{walFileName, snapFileName} {
		if err := os.Remove(filepath.Join(dir, f)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	walDev, snapDev, err := openDurableFiles(dir)
	if err != nil {
		return err
	}
	defer walDev.Close()
	defer snapDev.Close()

	db := core.NewDatabase(core.Options{PageSize: 512, PoolFrames: 64})
	if _, err := db.CreateRelationBTree("r", demoSchema(), 0); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	type live struct {
		key int64
		id  uint64
	}
	var rows []live
	tx := db.Begin()
	for i := 0; i < n; i++ {
		id, err := tx.Insert("r", tuple.I(int64(i)), tuple.I(int64(i*2)), tuple.S(fmt.Sprintf("s%d", i%7)))
		if err != nil {
			return err
		}
		rows = append(rows, live{key: int64(i), id: id})
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	if err := db.EnableDurability(walDev, snapDev, core.DurabilityOptions{CheckpointEvery: ckptEvery}); err != nil {
		return err
	}
	if err := db.CreateView(demoViewDef(n), core.Deferred); err != nil {
		return err
	}

	fmt.Printf("durable engine under %s: %d seed tuples, deferred view, checkpoint every %d commits\n", dir, n, ckptEvery)
	for c := 0; c < commits; c++ {
		tx := db.Begin()
		for j := 0; j < perTx; j++ {
			if len(rows) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(rows))
				if err := tx.Delete("r", tuple.I(rows[i].key), rows[i].id); err != nil {
					return err
				}
				rows = append(rows[:i], rows[i+1:]...)
				continue
			}
			key := rng.Int63n(int64(2 * n))
			id, err := tx.Insert("r", tuple.I(key), tuple.I(rng.Int63n(100)), tuple.S("w"))
			if err != nil {
				return err
			}
			rows = append(rows, live{key: key, id: id})
		}
		if err := tx.Commit(); err != nil {
			return err
		}
		if (c+1)%4 == 0 {
			if _, err := db.QueryView("v", nil); err != nil {
				return err
			}
		}
	}
	vrows, err := db.QueryView("v", nil)
	if err != nil {
		return err
	}
	walSize, _ := walDev.Size()
	snapSize, _ := snapDev.Size()
	fmt.Printf("ran %d commits (%d ops each): %d live tuples, %d view rows\n", commits, perTx, len(rows), len(vrows))
	fmt.Printf("wal tail %d bytes, snapshot store %d bytes — kill this process at any point and run: vmsim -recover %s\n",
		walSize, snapSize, dir)
	return nil
}

// runRecover rebuilds the database from dir's durable files and
// reports what recovery found.
func runRecover(dir string, ckptEvery int) error {
	walDev, snapDev, err := openDurableFiles(dir)
	if err != nil {
		return err
	}
	defer walDev.Close()
	defer snapDev.Close()
	db, info, err := core.Recover(walDev, snapDev, core.DurabilityOptions{CheckpointEvery: ckptEvery})
	if err != nil {
		return fmt.Errorf("recovering from %s: %w", dir, err)
	}
	fmt.Printf("recovered from %s: snapshot seq %d, %d records replayed, %d skipped", dir, info.SnapshotSeq, info.Replayed, info.Skipped)
	if info.TailDamage != "" {
		fmt.Printf(", %s tail truncated", info.TailDamage)
	}
	fmt.Println()
	if _, _, ok := db.View("v"); ok {
		vrows, err := db.QueryView("v", nil)
		if err != nil {
			return err
		}
		fmt.Printf("view v answers with %d rows; the engine continues logging to the same files\n", len(vrows))
	}
	return nil
}
