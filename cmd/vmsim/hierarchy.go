package main

import (
	"fmt"
	"sort"
	"strings"

	"viewmat/internal/agg"
	"viewmat/internal/core"
	"viewmat/internal/pred"
	"viewmat/internal/report"
	"viewmat/internal/tuple"
	"viewmat/internal/workload"
)

// runHierarchy demos views over views with heavy-light partitioning:
// a deferred root over the base relation, two sibling children that
// drain the root's delta log as one shared group, a grouped-aggregate
// grandchild, and a scalar total. A zipfian update burst classifies
// the hot keys, which refresh eagerly inside their commits; the long
// tail folds lazily at RefreshAll. The printed refresh trees show the
// delta-of-a-delta operators: ViewDeltaScan replaying the parent's
// log, SharedDelta charging one replay to the leader sibling.
func runHierarchy(skew float64, seed int64) error {
	const (
		nRows    = 400
		keySpace = 200
		burst    = 60
	)
	db := core.NewDatabase(core.Options{PageSize: 512, PoolFrames: 256})
	schema := tuple.NewSchema(
		tuple.Col("k", tuple.Int), tuple.Col("a", tuple.Int), tuple.Col("s", tuple.String))
	if _, err := db.CreateRelationBTree("r", schema, 0); err != nil {
		return err
	}
	tx := db.Begin()
	for i := 0; i < nRows; i++ {
		if _, err := tx.Insert("r", tuple.I(int64(i%keySpace)), tuple.I(int64(i)), tuple.S("s")); err != nil {
			return err
		}
	}
	if err := tx.Commit(); err != nil {
		return err
	}

	between := func(lo, hi int64) *pred.P {
		return pred.New(
			pred.Cmp{Rel: 0, Col: 0, Op: pred.Ge, Val: tuple.I(lo)},
			pred.Cmp{Rel: 0, Col: 0, Op: pred.Lt, Val: tuple.I(hi)},
		)
	}
	specs := []core.ViewSpec{
		{Def: core.Def{Name: "v", Kind: core.SelectProject, Relations: []string{"r"},
			Pred: between(0, keySpace), Project: [][]int{{0, 1}}, ViewKeyCol: 0}, Strategy: core.Deferred},
		{Def: core.Def{Name: "c0", Kind: core.SelectProject, Relations: []string{"v"},
			Pred: between(20, 160), Project: [][]int{{0, 1}}, ViewKeyCol: 0}, Strategy: core.Deferred},
		{Def: core.Def{Name: "c1", Kind: core.SelectProject, Relations: []string{"v"},
			Pred: between(40, 120), Project: [][]int{{0, 1}}, ViewKeyCol: 0}, Strategy: core.Deferred},
		{Def: core.Def{Name: "perkey", Kind: core.GroupedAggregate, Relations: []string{"c0"},
			Pred: between(0, keySpace), AggKind: agg.Count, AggCol: 0, GroupBy: 0}, Strategy: core.Deferred},
		{Def: core.Def{Name: "total", Kind: core.Aggregate, Relations: []string{"c1"},
			Pred: between(0, keySpace), AggKind: agg.Sum, AggCol: 1}, Strategy: core.Deferred},
	}
	if err := db.CreateViews(specs); err != nil {
		return err
	}

	keys := workload.KeyStream(burst, keySpace, skew, seed)
	threshold := workload.SuggestThreshold(keys, 0.5)
	if err := db.EnableHeavyLight("r", threshold, 8); err != nil {
		return err
	}
	fmt.Printf("hierarchy demo: r(%d rows) -> v -> {c0, c1} -> {perkey, total}\n", nRows)
	fmt.Printf("update burst: %d keys, skew %g, heavy-light threshold %.3f\n\n", burst, skew, threshold)

	for i, k := range keys {
		tx := db.Begin()
		if _, err := tx.Insert("r", tuple.I(k), tuple.I(int64(i)), tuple.S("u")); err != nil {
			return err
		}
		if err := tx.Commit(); err != nil {
			return err
		}
		// Periodic folds give the router its cadence: a fold drains the
		// AD file and resets the ordering filter, after which keys the
		// tracker has seen enough of route eagerly.
		if (i+1)%20 == 0 {
			if err := db.RefreshAll(); err != nil {
				return err
			}
		}
	}
	if err := db.RefreshAll(); err != nil {
		return err
	}

	rows := [][]string{}
	for _, name := range []string{"v", "c0", "c1"} {
		rs, err := db.QueryView(name, nil)
		if err != nil {
			return err
		}
		kids, err := db.ViewChildren(name)
		if err != nil {
			return err
		}
		rows = append(rows, []string{name, fmt.Sprintf("%d", len(rs)), strings.Join(kids, " ")})
	}
	groups, err := db.QueryGroups("perkey", nil)
	if err != nil {
		return err
	}
	rows = append(rows, []string{"perkey", fmt.Sprintf("%d groups", len(groups)), ""})
	total, ok, err := db.QueryAggregate("total")
	if err != nil {
		return err
	}
	rows = append(rows, []string{"total", fmt.Sprintf("sum=%.0f (defined=%v)", total, ok), ""})
	fmt.Print(report.Table([]string{"view", "rows", "children"}, rows))

	for _, st := range db.HeavyLightStats() {
		fmt.Printf("\nheavy-light %q: %d ops = %d eager (hot) + %d lazy (AD file); hot keys: %s\n",
			st.Rel, st.Total, st.HeavyOps, st.LightOps, strings.Join(st.HotKeys, " "))
	}

	for _, name := range []string{"c0", "c1"} {
		ex, err := db.Explain(name, core.WorkloadHints{})
		if err != nil {
			return err
		}
		paths := make([]string, 0, len(ex.PlanTrees))
		for p := range ex.PlanTrees {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		fmt.Printf("\n%s operator trees:\n", name)
		for _, p := range paths {
			fmt.Printf("[%s]\n%s", p, ex.PlanTrees[p])
		}
	}

	var phases []string
	bd := db.Breakdown()
	for ph := range bd {
		phases = append(phases, string(ph))
	}
	sort.Strings(phases)
	fmt.Println("\nmetered charges by phase:")
	for _, ph := range phases {
		s := bd[core.Phase(ph)]
		fmt.Printf("  %-12s reads=%d writes=%d screens=%d adTouches=%d\n",
			ph, s.Reads, s.Writes, s.Screens, s.ADTouches)
	}
	return nil
}
