// Command loadgen replays seeded zipfian multi-tenant workloads
// against viewmatd and measures per-operation latency, proving the
// adaptive advisor's crossover win end to end: the same phase-shifted
// stream (query-heavy, then update-heavy) runs against three arms —
//
//	static-qm         every view stays query-modification
//	static-immediate  every view stays immediately materialized
//	adaptive          views start at query-modification; the advisor
//	                  re-fits the paper's parameters online and flips
//
// Each arm gets its own in-process server; each tenant gets its own
// relation, secondary index, view, and client connection. The view
// predicate is on a non-clustering column, so query modification pays
// the paper's unclustered plan — the regime where the right strategy
// actually changes with the k/q mix. Per-phase p50/p99 latency and
// throughput land in a JSON report (-o); -check validates a previous
// report against the crossover acceptance bars, so CI can gate on it:
//
//	go run ./cmd/loadgen -o BENCH_advisor.json
//	go run ./cmd/loadgen -check BENCH_advisor.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"viewmat/internal/client"
	"viewmat/internal/core"
	"viewmat/internal/costmodel"
	"viewmat/internal/pred"
	"viewmat/internal/server"
	"viewmat/internal/tuple"
	"viewmat/internal/workload"
)

type config struct {
	Seed       int64   `json:"seed"`
	Tenants    int     `json:"tenants"`
	N          float64 `json:"n"`
	F          float64 `json:"f"`
	FV         float64 `json:"fv"`
	Skew       float64 `json:"skew"`
	PoolFrames int     `json:"pool_frames"`
	IOLatencyU int64   `json:"io_latency_us"`
	TickEvery  int     `json:"tick_every"`
	Settle     float64 `json:"settle"`
	Phases     []phaseSpec `json:"phases"`
}

type phaseSpec struct {
	K float64 `json:"k"`
	Q float64 `json:"q"`
	L float64 `json:"l"`
}

// phaseStats reports one arm's steady state in one phase. The headline
// P50/P99 cover the phase's dominant operation kind — the latency the
// phase's mix actually stresses. Percentiles over the mixed stream
// would instead report the *rare* kind whenever it is slower (1% of a
// 90:10 mix is deep inside the minority), hiding exactly the behavior
// the strategy choice changes.
type phaseStats struct {
	Ops         int     `json:"ops"`
	P50Us       float64 `json:"p50_us"`
	P99Us       float64 `json:"p99_us"`
	QueryP50Us  float64 `json:"query_p50_us"`
	QueryP99Us  float64 `json:"query_p99_us"`
	UpdateP50Us float64 `json:"update_p50_us"`
	UpdateP99Us float64 `json:"update_p99_us"`
	OpsPerSec   float64 `json:"ops_per_sec"`
}

type armReport struct {
	Phases []phaseStats `json:"phases"`
	Flips  []flipEvent  `json:"flips,omitempty"`
}

type flipEvent struct {
	Phase  int    `json:"phase"`
	View   string `json:"view"`
	From   string `json:"from"`
	To     string `json:"to"`
	Reason string `json:"reason"`
}

// phaseSummary ranks the arms on dominant-class p50: with only a few
// hundred post-settle samples per phase, tail percentiles are host
// scheduling noise (a single descheduled batch moves p99 by 5x), while
// the median moves only when the strategy choice actually changes the
// work per operation. The per-arm reports still carry p99 for reading.
type phaseSummary struct {
	BestStatic     string  `json:"best_static"`
	BestP50Us      float64 `json:"best_p50_us"`
	WorstStatic    string  `json:"worst_static"`
	WorstP50Us     float64 `json:"worst_p50_us"`
	AdaptiveP50Us  float64 `json:"adaptive_p50_us"`
	AdaptiveVsBest float64 `json:"adaptive_vs_best"`
	WorstVsBest    float64 `json:"worst_vs_best"`
}

type report struct {
	Config  config                `json:"config"`
	Arms    map[string]*armReport `json:"arms"`
	Summary []phaseSummary        `json:"summary"`
}

func main() {
	seed := flag.Int64("seed", 1, "workload seed")
	tenants := flag.Int("tenants", 2, "tenant count (one relation+view+connection each)")
	n := flag.Float64("n", 1500, "base relation cardinality per tenant")
	f := flag.Float64("f", 0.6, "view selectivity (high enough that immediate maintenance I/O is visible next to the shared base-update cost)")
	fv := flag.Float64("fv", 0.04, "fraction of the view each query retrieves")
	skew := flag.Float64("skew", 1.2, "zipf s for update keys (≤1 = uniform)")
	phasesFlag := flag.String("phases", "30:270:4,270:30:4", "comma-separated k:q:l phases")
	poolFrames := flag.Int("pool-frames", 12, "buffer-pool frames (small pool keeps metered I/O visible)")
	ioLat := flag.Duration("io", 50*time.Microsecond, "simulated latency per physical page transfer")
	tickEvery := flag.Int("tick", 15, "adaptive arm: advisor decision round every this many tenant-0 ops")
	settle := flag.Float64("settle", 0.5, "fraction of each phase excluded from stats (warm-up + advisor convergence)")
	out := flag.String("o", "", "write the JSON report here")
	check := flag.String("check", "", "validate an existing report instead of running")
	maxAdaptive := flag.Float64("max-adaptive-ratio", 1.15, "check: adaptive p50 must be within this factor of the best static arm")
	minWrong := flag.Float64("min-wrong-ratio", 1.2, "check: the wrong static arm must be at least this factor worse")
	flag.Parse()

	if *check != "" {
		if err := checkReport(*check, *maxAdaptive, *minWrong); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		fmt.Println("crossover check passed")
		return
	}

	phases, err := parsePhases(*phasesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	cfg := config{
		Seed: *seed, Tenants: *tenants, N: *n, F: *f, FV: *fv, Skew: *skew,
		PoolFrames: *poolFrames, IOLatencyU: ioLat.Microseconds(),
		TickEvery: *tickEvery, Settle: *settle, Phases: phases,
	}
	rep, err := run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	printSummary(rep)
	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(*out, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		fmt.Println("report written to", *out)
	}
}

func parsePhases(s string) ([]phaseSpec, error) {
	var out []phaseSpec
	for _, part := range strings.Split(s, ",") {
		nums := strings.Split(part, ":")
		if len(nums) != 3 {
			return nil, fmt.Errorf("phase %q: want k:q:l", part)
		}
		var v [3]float64
		for i, t := range nums {
			x, err := strconv.ParseFloat(strings.TrimSpace(t), 64)
			if err != nil {
				return nil, fmt.Errorf("phase %q: %w", part, err)
			}
			v[i] = x
		}
		out = append(out, phaseSpec{K: v[0], Q: v[1], L: v[2]})
	}
	if len(out) < 2 {
		return nil, fmt.Errorf("need at least two phases for a crossover")
	}
	return out, nil
}

func (c config) params(ph phaseSpec) costmodel.Params {
	p := costmodel.Default()
	p.N, p.F, p.FV = c.N, c.F, c.FV
	p.K, p.Q, p.L = ph.K, ph.Q, ph.L
	return p
}

// run measures all three arms sequentially (own server each) so they
// never compete for CPU.
func run(cfg config) (*report, error) {
	rep := &report{Config: cfg, Arms: map[string]*armReport{}}
	arms := []struct {
		name     string
		strategy core.Strategy
		adaptive bool
	}{
		{"static-qm", core.QueryModification, false},
		{"static-immediate", core.Immediate, false},
		{"adaptive", core.QueryModification, true},
	}
	for _, arm := range arms {
		fmt.Printf("--- arm %s\n", arm.name)
		ar, err := runArm(cfg, arm.strategy, arm.adaptive)
		if err != nil {
			return nil, fmt.Errorf("arm %s: %w", arm.name, err)
		}
		rep.Arms[arm.name] = ar
	}
	for pi := range cfg.Phases {
		qm := rep.Arms["static-qm"].Phases[pi]
		im := rep.Arms["static-immediate"].Phases[pi]
		ad := rep.Arms["adaptive"].Phases[pi]
		s := phaseSummary{BestStatic: "static-qm", BestP50Us: qm.P50Us, WorstStatic: "static-immediate", WorstP50Us: im.P50Us}
		if im.P50Us < qm.P50Us {
			s.BestStatic, s.BestP50Us = "static-immediate", im.P50Us
			s.WorstStatic, s.WorstP50Us = "static-qm", qm.P50Us
		}
		s.AdaptiveP50Us = ad.P50Us
		s.AdaptiveVsBest = ad.P50Us / s.BestP50Us
		s.WorstVsBest = s.WorstP50Us / s.BestP50Us
		rep.Summary = append(rep.Summary, s)
	}
	return rep, nil
}

func runArm(cfg config, strategy core.Strategy, adaptive bool) (*armReport, error) {
	db := core.NewDatabase(core.Options{
		PageSize:           int(costmodel.Default().B),
		PoolFrames:         cfg.PoolFrames,
		MaxRefreshWorkers:  4,
		SimulatedIOLatency: time.Duration(cfg.IOLatencyU) * time.Microsecond,
	})
	if adaptive {
		// A short half-life keeps the estimates tracking the live mix,
		// so the advisor notices the phase shift within a phase.
		if err := db.EnableAdaptive(core.AdvisorOptions{MinObservations: 12, HalfLife: 16}); err != nil {
			return nil, err
		}
	}
	srv := server.New(db, server.Config{MaxInflight: 64, Logf: func(string, ...any) {}})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(lis) }()
	defer func() {
		srv.Kill()
		<-serveDone
	}()
	addr := lis.Addr().String()

	ts := make([]*tenant, cfg.Tenants)
	for i := range ts {
		t, err := newTenant(cfg, addr, i, strategy)
		if err != nil {
			return nil, err
		}
		defer t.c.Close()
		ts[i] = t
	}

	var admin *client.Client
	if adaptive {
		admin, err = client.Dial(addr)
		if err != nil {
			return nil, err
		}
		defer admin.Close()
	}

	ar := &armReport{}
	for pi := range cfg.Phases {
		start := time.Now()
		var wg sync.WaitGroup
		errs := make([]error, len(ts))
		flipc := make(chan flipEvent, 64)
		for i, t := range ts {
			wg.Add(1)
			go func(i int, t *tenant) {
				defer wg.Done()
				// Tenant 0 doubles as the advisor driver: a decision
				// round every tick ops, like viewmatd's -adapt-every
				// ticker but deterministic in op count.
				var ticker func()
				if admin != nil && i == 0 {
					ticker = func() {
						flips, err := admin.AdaptTick()
						if err != nil {
							return
						}
						for _, fl := range flips {
							flipc <- flipEvent{Phase: pi, View: fl.View, From: fl.From, To: fl.To, Reason: fl.Reason}
						}
					}
				}
				errs[i] = t.runPhase(pi, cfg.TickEvery, ticker)
			}(i, t)
		}
		wg.Wait()
		close(flipc)
		for fl := range flipc {
			ar.Flips = append(ar.Flips, fl)
		}
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		ar.Phases = append(ar.Phases, summarizePhase(ts, pi, cfg.Settle, time.Since(start)))
	}
	return ar, nil
}

// tenant owns one relation, one view, one connection, and its
// deterministic phased operation stream.
type tenant struct {
	c      *client.Client
	rel    string
	view   string
	n      int64
	ids    map[int64]uint64 // clustering key -> live tuple id
	ops    []workload.Operation
	starts []int
	// lat[phase] holds per-op wall latencies in stream order.
	lat [][]opLat
}

type opLat struct {
	kind workload.OpKind
	dur  time.Duration
}

func newTenant(cfg config, addr string, idx int, strategy core.Strategy) (*tenant, error) {
	var phases []workload.Phase
	for _, ph := range cfg.Phases {
		phases = append(phases, workload.Phase{Params: cfg.params(ph), Skew: cfg.Skew})
	}
	ops, starts, err := workload.GeneratePhased(cfg.Seed+int64(idx)*7919, phases...)
	if err != nil {
		return nil, err
	}
	c, err := client.Dial(addr)
	if err != nil {
		return nil, err
	}
	t := &tenant{
		c: c, rel: fmt.Sprintf("r%d", idx), view: fmt.Sprintf("v%d", idx),
		n: int64(cfg.N), ids: make(map[int64]uint64), ops: ops, starts: starts,
		lat: make([][]opLat, len(cfg.Phases)),
	}

	schema := tuple.NewSchema(tuple.Col("k", tuple.Int), tuple.Col("a", tuple.Int), tuple.Col("p", tuple.Int))
	if err := c.CreateRelationBTree(t.rel, schema, 0); err != nil {
		return nil, err
	}
	// The view predicate and key live on column a, not the clustering
	// key, so query modification runs the paper's unclustered plan
	// through this secondary index — the regime with a real strategy
	// crossover (a clustered-key predicate makes QM unbeatable, §3.2).
	if err := c.CreateSecondaryIndex(t.rel, 1); err != nil {
		return nil, err
	}
	n := int64(cfg.N)
	for lo := int64(0); lo < n; lo += 250 {
		tx := c.Begin()
		hi := lo + 250
		if hi > n {
			hi = n
		}
		for k := lo; k < hi; k++ {
			// a is a modular permutation of k, so a contiguous view-key
			// range maps to base tuples scattered across the relation —
			// the random placement the unclustered plan's cost assumes.
			// (a = k would put the view's tuples on consecutive leaves
			// and quietly hand QM clustered-plan performance.)
			tx.Insert(t.rel, tuple.I(k), tuple.I(t.perm(k)), tuple.I(k%997))
		}
		ids, err := tx.Commit()
		if err != nil {
			return nil, err
		}
		for i, k := 0, lo; k < hi; i, k = i+1, k+1 {
			t.ids[k] = ids[i]
		}
	}
	viewTuples := int64(cfg.F * cfg.N)
	def := core.Def{
		Name:      t.view,
		Kind:      core.SelectProject,
		Relations: []string{t.rel},
		Pred: pred.New(
			pred.Cmp{Rel: 0, Col: 1, Op: pred.Ge, Val: tuple.I(0)},
			pred.Cmp{Rel: 0, Col: 1, Op: pred.Lt, Val: tuple.I(viewTuples)},
		),
		Project:    [][]int{{1, 2}},
		ViewKeyCol: 0,
	}
	if err := c.CreateView(def, strategy); err != nil {
		return nil, err
	}
	return t, nil
}

// perm maps a clustering key to its view-key value a: a modular
// permutation of [0, n) (the multiplier is prime, so it is coprime to
// any realistic n). An update rewrites the payload only; a is a pure
// function of k, so view membership never changes mid-run and the
// measured selectivity stays at f.
func (t *tenant) perm(k int64) int64 { return k * 1000003 % t.n }

func (t *tenant) runPhase(pi, tickEvery int, tick func()) error {
	lo := t.starts[pi]
	hi := len(t.ops)
	if pi+1 < len(t.starts) {
		hi = t.starts[pi+1]
	}
	for i := lo; i < hi; i++ {
		op := t.ops[i]
		start := time.Now()
		switch op.Kind {
		case workload.OpUpdate:
			// Zipf streams repeat hot keys within one transaction; a
			// tuple id is only valid for the first rewrite, so apply
			// one modification per key (the last payload wins).
			payload := make(map[int64]int64, len(op.Keys))
			keys := op.Keys[:0:0]
			for j, k := range op.Keys {
				if _, dup := payload[k]; !dup {
					keys = append(keys, k)
				}
				payload[k] = op.NewPayload[j]
			}
			tx := t.c.Begin()
			for _, k := range keys {
				tx.Update(t.rel, tuple.I(k), t.ids[k], tuple.I(k), tuple.I(t.perm(k)), tuple.I(payload[k]))
			}
			ids, err := tx.Commit()
			if err != nil {
				return fmt.Errorf("%s op %d: %w", t.rel, i, err)
			}
			for j, k := range keys {
				t.ids[k] = ids[j]
			}
		case workload.OpQuery:
			rg := pred.NewRange(tuple.I(op.QueryLo), tuple.I(op.QueryHi), true, true)
			if _, err := t.c.QueryView(t.view, rg); err != nil {
				return fmt.Errorf("%s op %d: %w", t.view, i, err)
			}
		}
		t.lat[pi] = append(t.lat[pi], opLat{kind: op.Kind, dur: time.Since(start)})
		if tick != nil && (i-lo+1)%tickEvery == 0 {
			tick()
		}
	}
	return nil
}

// summarizePhase merges post-settle latencies across tenants. The
// settle prefix of each tenant's stream absorbs both cache warm-up and
// the adaptive arm's convergence, so the stats compare steady states.
func summarizePhase(ts []*tenant, pi int, settle float64, wall time.Duration) phaseStats {
	var queries, updates []time.Duration
	total := 0
	for _, t := range ts {
		l := t.lat[pi]
		total += len(l)
		for _, ol := range l[int(float64(len(l))*settle):] {
			if ol.kind == workload.OpQuery {
				queries = append(queries, ol.dur)
			} else {
				updates = append(updates, ol.dur)
			}
		}
	}
	pct := func(s []time.Duration, q float64) float64 {
		if len(s) == 0 {
			return 0
		}
		return float64(s[int(q*float64(len(s)-1))].Microseconds())
	}
	for _, s := range [][]time.Duration{queries, updates} {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
	dominant := queries
	if len(updates) > len(queries) {
		dominant = updates
	}
	return phaseStats{
		Ops:         total,
		P50Us:       pct(dominant, 0.50),
		P99Us:       pct(dominant, 0.99),
		QueryP50Us:  pct(queries, 0.50),
		QueryP99Us:  pct(queries, 0.99),
		UpdateP50Us: pct(updates, 0.50),
		UpdateP99Us: pct(updates, 0.99),
		OpsPerSec:   float64(total) / wall.Seconds(),
	}
}

func printSummary(rep *report) {
	for pi, s := range rep.Summary {
		ph := rep.Config.Phases[pi]
		fmt.Printf("phase %d (k=%.0f q=%.0f l=%.0f): best %s p50=%.0fus; adaptive p50=%.0fus (%.2fx); worst %s p50=%.0fus (%.2fx)\n",
			pi, ph.K, ph.Q, ph.L, s.BestStatic, s.BestP50Us, s.AdaptiveP50Us, s.AdaptiveVsBest, s.WorstStatic, s.WorstP50Us, s.WorstVsBest)
	}
	for _, fl := range rep.Arms["adaptive"].Flips {
		fmt.Printf("flip (phase %d): %s %s -> %s (%s)\n", fl.Phase, fl.View, fl.From, fl.To, fl.Reason)
	}
}

// checkReport enforces the crossover acceptance bars on a previous
// run's report: in every phase the adaptive arm's p50 stays within
// maxAdaptive of the best static arm, the best static arm differs
// across phases (the crossover is real), and in every phase the wrong
// static arm is at least minWrong worse.
func checkReport(path string, maxAdaptive, minWrong float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return err
	}
	if len(rep.Summary) < 2 {
		return fmt.Errorf("%s: fewer than two phases", path)
	}
	bests := map[string]bool{}
	for pi, s := range rep.Summary {
		bests[s.BestStatic] = true
		if s.AdaptiveVsBest > maxAdaptive {
			return fmt.Errorf("phase %d: adaptive p50 %.2fx the best static arm (%s), above the %.2fx bar",
				pi, s.AdaptiveVsBest, s.BestStatic, maxAdaptive)
		}
		if s.WorstVsBest < minWrong {
			return fmt.Errorf("phase %d: wrong static arm only %.2fx worse than best, below the %.2fx bar — no crossover pressure",
				pi, s.WorstVsBest, minWrong)
		}
	}
	if len(bests) < 2 {
		return fmt.Errorf("same static arm won every phase — workload has no crossover")
	}
	if len(rep.Arms["adaptive"].Flips) == 0 {
		return fmt.Errorf("adaptive arm never flipped")
	}
	return nil
}
