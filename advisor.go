package viewmat

import (
	"errors"
	"fmt"

	"viewmat/internal/costmodel"
)

// ErrUnknownViewKind is returned by Advise for a ViewKind outside the
// paper's three models, matching the typed-error convention of the
// DDL surface (ErrStrategyConflict, ErrHierarchyCycle, …).
var ErrUnknownViewKind = errors.New("viewmat: unknown view kind")

// Recommendation is the advisor's verdict for one view model: the
// cheapest strategy under the analytic cost model, the full cost table,
// and a short rationale in the paper's terms.
type Recommendation struct {
	Model     ViewKind
	Best      string
	Costs     map[string]float64 // strategy → predicted ms per query
	Rationale string
}

// Advise inverts the cost model: given workload parameters it returns,
// for the given view model, the strategy the analysis recommends. It
// operationalizes the paper's conclusion (§4) that the best algorithm
// depends chiefly on P, f, fv, l and the A/D upkeep cost.
func Advise(kind ViewKind, p Params) (Recommendation, error) {
	if err := p.Validate(); err != nil {
		return Recommendation{}, err
	}
	var costs map[costmodel.Algorithm]float64
	switch kind {
	case SelectProject:
		costs = costmodel.Model1Costs(p)
	case Join:
		costs = costmodel.Model2Costs(p)
	case Aggregate:
		costs = costmodel.Model3Costs(p)
	default:
		return Recommendation{}, fmt.Errorf("%w: %v", ErrUnknownViewKind, kind)
	}
	best, bestCost := costmodel.Best(costs)
	rec := Recommendation{
		Model: kind,
		Best:  string(best),
		Costs: map[string]float64{},
	}
	for alg, c := range costs {
		rec.Costs[string(alg)] = c
	}
	rec.Rationale = rationale(kind, p, best, bestCost)
	return rec, nil
}

// AdviseExtended ranks all five strategies — the paper's three plus
// snapshot and recompute-on-demand — for a Model-1 (select-project)
// view. snapshotEvery is the snapshot refresh period in update
// transactions; note that a snapshot verdict buys its cost advantage
// with staleness of up to that period.
func AdviseExtended(p Params, snapshotEvery float64) (Recommendation, error) {
	if err := p.Validate(); err != nil {
		return Recommendation{}, err
	}
	costs := costmodel.Model1CostsExtended(p, snapshotEvery)
	best, bestCost := costmodel.Best(costs)
	rec := Recommendation{Model: SelectProject, Best: string(best), Costs: map[string]float64{}}
	for alg, c := range costs {
		rec.Costs[string(alg)] = c
	}
	switch best {
	case costmodel.AlgSnapshot:
		rec.Rationale = fmt.Sprintf("snapshot wins at %.0f ms/query by skipping screening and amortizing one rebuild over %g transactions — reads may be stale by that period", bestCost, snapshotEvery)
	case costmodel.AlgRecomputeOnDemand:
		rec.Rationale = fmt.Sprintf("recompute-on-demand wins at %.0f ms/query: churn is heavy enough that one bounded rebuild beats per-tuple differential I/O", bestCost)
	default:
		rec.Rationale = rationale(SelectProject, p, best, bestCost)
	}
	return rec, nil
}

// StrategyFor maps an advisor verdict onto an engine strategy:
// query-modification plans map to QueryModification; the maintenance
// algorithms map to themselves.
func StrategyFor(rec Recommendation) Strategy {
	switch rec.Best {
	case string(costmodel.AlgImmediate):
		return Immediate
	case string(costmodel.AlgDeferred):
		return Deferred
	case string(costmodel.AlgSnapshot):
		return Snapshot
	case string(costmodel.AlgRecomputeOnDemand):
		return RecomputeOnDemand
	default:
		return QueryModification
	}
}

func rationale(kind ViewKind, p Params, best costmodel.Algorithm, cost float64) string {
	switch best {
	case costmodel.AlgDeferred:
		return fmt.Sprintf("deferred wins at %.0f ms/query: high update ratio (P=%.2f) favors batching refreshes, and the A/D upkeep cost (C3=%g) penalizes immediate maintenance", cost, p.P(), p.C3)
	case costmodel.AlgImmediate:
		return fmt.Sprintf("immediate wins at %.0f ms/query: queries dominate (P=%.2f), so the materialized copy's denser pages pay for per-transaction refresh", cost, p.P())
	case costmodel.AlgClustered, costmodel.AlgLoopJoin:
		return fmt.Sprintf("query modification wins at %.0f ms/query: with P=%.2f and fv=%g the maintenance overhead of a materialized copy exceeds its query savings", cost, p.P(), p.FV)
	default:
		return fmt.Sprintf("%s wins at %.0f ms/query", best, cost)
	}
}
