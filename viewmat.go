// Package viewmat is a single-node relational engine built to study —
// and let applications exploit — the three view materialization
// strategies analyzed in Eric Hanson's "A Performance Analysis of View
// Materialization Strategies" (SIGMOD 1987 / UCB ERL M86/98):
//
//   - query modification: views are never stored; queries are
//     rewritten onto the base relations,
//   - immediate maintenance: a materialized copy is updated by the
//     differential algorithm after every transaction,
//   - deferred maintenance (the paper's proposal): changes are
//     captured in hypothetical relations (a Bloom-filtered combined
//     differential file) and folded into the materialized copy just
//     before the view is read.
//
// The engine runs on a simulated disk that counts the operations the
// paper's cost model prices — C1 per predicate screen, C2 per page
// I/O, C3 per A/D bookkeeping touch — so measured costs are directly
// comparable to the analytic model in this module's costmodel layer.
//
// # Quick start
//
//	db := viewmat.Open(viewmat.Options{})
//	db.CreateRelationBTree("emp", viewmat.NewSchema(
//	    viewmat.Col("dept", viewmat.Int),
//	    viewmat.Col("name", viewmat.String),
//	), 0)
//	db.CreateView(viewmat.Def{
//	    Name:      "eng",
//	    Kind:      viewmat.SelectProject,
//	    Relations: []string{"emp"},
//	    Pred:      viewmat.Where(viewmat.ColEq(0, 0, viewmat.I(7))),
//	    Project:   [][]int{{0, 1}},
//	}, viewmat.Deferred)
//	tx := db.Begin()
//	tx.Insert("emp", viewmat.I(7), viewmat.S("ada"))
//	tx.Commit()
//	rows, _ := db.QueryView("eng", nil)
//
// See examples/ for runnable programs and DESIGN.md for the map from
// the paper's sections to packages.
package viewmat

import (
	"io"

	"viewmat/internal/agg"
	"viewmat/internal/core"
	"viewmat/internal/costmodel"
	"viewmat/internal/pred"
	"viewmat/internal/storage"
	"viewmat/internal/tuple"
)

// Core engine types.
type (
	// Database is the engine: relations, views, transactions, cost
	// accounting.
	Database = core.Database
	// Options configures a Database.
	Options = core.Options
	// Tx is a buffered update transaction.
	Tx = core.Tx
	// Def is a view definition.
	Def = core.Def
	// ResultRow is one view query result row.
	ResultRow = core.ResultRow
	// Strategy selects how a view is maintained.
	Strategy = core.Strategy
	// ViewKind classifies views (select-project, join, aggregate).
	ViewKind = core.Kind
	// QueryPlan selects a query-modification access path.
	QueryPlan = core.QueryPlan
	// Phase labels cost-attribution buckets in Database.Breakdown.
	Phase = core.Phase
	// Stats is a snapshot of metered operation counts.
	Stats = storage.Stats
)

// Schema and value types.
type (
	// Schema describes a relation's columns.
	Schema = tuple.Schema
	// Column is one schema column.
	Column = tuple.Column
	// Value is a typed scalar.
	Value = tuple.Value
	// ColType enumerates column types.
	ColType = tuple.Type
)

// Predicate types.
type (
	// Predicate is a conjunction of comparison and join atoms.
	Predicate = pred.P
	// Range is a value interval (used for view queries).
	Range = pred.Range
	// Cmp compares a relation column to a constant.
	Cmp = pred.Cmp
	// JoinEq equates columns of two relations.
	JoinEq = pred.JoinEq
	// Op is a comparison operator.
	Op = pred.Op
)

// AggKind selects an aggregate function for Model-3 views.
type AggKind = agg.Kind

// Params are the cost model's workload parameters.
type Params = costmodel.Params

// WorkloadHints feeds anticipated operation mix into ProfileView and
// Explain.
type WorkloadHints = core.WorkloadHints

// Explanation is Explain's report: profiled parameters and the cost of
// every strategy the model covers for the view's kind.
type Explanation = core.Explanation

// Adaptive advisor surface (see Database.EnableAdaptive, AdaptTick,
// SetStrategy, AdvisorStats).
type (
	// AdvisorOptions tunes the online adaptive advisor.
	AdvisorOptions = core.AdvisorOptions
	// FlipReport describes one strategy flip AdaptTick applied.
	FlipReport = core.FlipReport
	// AdvisorViewStat is one view's advisor state.
	AdvisorViewStat = core.AdvisorViewStat
	// Estimator folds live observations into measured workload
	// parameters for the cost model.
	Estimator = costmodel.Estimator
)

// Adaptive advisor errors.
var (
	// ErrAdaptiveDisabled is returned by AdaptTick before EnableAdaptive.
	ErrAdaptiveDisabled = core.ErrAdaptiveDisabled
	// ErrFlipUnsupported marks strategy flips the engine refuses.
	ErrFlipUnsupported = core.ErrFlipUnsupported
)

// Strategies. The first three are the paper's contenders; Snapshot
// and RecomputeOnDemand implement the two further mechanisms its
// introduction surveys ([Adib80, Lind86] and [Bune79]).
const (
	// QueryModification rewrites view queries onto base relations.
	QueryModification = core.QueryModification
	// Immediate refreshes materialized views after every transaction.
	Immediate = core.Immediate
	// Deferred refreshes materialized views just before they are read.
	Deferred = core.Deferred
	// Snapshot keeps a periodically recomputed copy (reads may be
	// stale within the configured interval).
	Snapshot = core.Snapshot
	// RecomputeOnDemand fully recomputes before a read whenever a
	// screened update may have changed the view.
	RecomputeOnDemand = core.RecomputeOnDemand
)

// View kinds.
const (
	// SelectProject is Model 1.
	SelectProject = core.SelectProject
	// Join is Model 2.
	Join = core.Join
	// Aggregate is Model 3.
	Aggregate = core.Aggregate
	// GroupedAggregate is Model 3 with a GROUP BY column (extension);
	// query with Database.QueryGroups.
	GroupedAggregate = core.GroupedAggregate
)

// GroupRow is one grouped-aggregate query result.
type GroupRow = core.GroupRow

// Query plans.
const (
	// PlanAuto picks an access path automatically.
	PlanAuto = core.PlanAuto
	// PlanClustered scans the clustering index.
	PlanClustered = core.PlanClustered
	// PlanUnclustered fetches through a secondary index.
	PlanUnclustered = core.PlanUnclustered
	// PlanSequential scans the whole relation.
	PlanSequential = core.PlanSequential
	// PlanLoopJoin runs a nested-loop join.
	PlanLoopJoin = core.PlanLoopJoin
)

// Column types.
const (
	// Int is a 64-bit integer column.
	Int = tuple.Int
	// Float is a 64-bit float column.
	Float = tuple.Float
	// String is a byte-string column.
	String = tuple.String
)

// Comparison operators.
const (
	// Eq is =.
	Eq = pred.Eq
	// Ne is !=.
	Ne = pred.Ne
	// Lt is <.
	Lt = pred.Lt
	// Le is <=.
	Le = pred.Le
	// Gt is >.
	Gt = pred.Gt
	// Ge is >=.
	Ge = pred.Ge
)

// Aggregate kinds.
const (
	// Count counts tuples.
	Count = agg.Count
	// Sum totals a column.
	Sum = agg.Sum
	// Avg averages a column.
	Avg = agg.Avg
	// Min tracks a column minimum.
	Min = agg.Min
	// Max tracks a column maximum.
	Max = agg.Max
	// Var tracks the population variance of a column.
	Var = agg.Var
	// StdDev tracks the population standard deviation of a column.
	StdDev = agg.StdDev
)

// Open creates an empty database. The zero Options selects the paper's
// page size (4000 bytes) and a ~1 MB buffer pool.
func Open(opts Options) *Database { return core.NewDatabase(opts) }

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) *Schema { return tuple.NewSchema(cols...) }

// Col builds a schema column.
func Col(name string, t ColType) Column { return tuple.Col(name, t) }

// I builds an integer value.
func I(v int64) Value { return tuple.I(v) }

// F builds a float value.
func F(v float64) Value { return tuple.F(v) }

// S builds a string value.
func S(v string) Value { return tuple.S(v) }

// Where builds a predicate from atoms (conjunction; empty = true).
func Where(atoms ...pred.Atom) *Predicate { return pred.New(atoms...) }

// ColEq builds the atom "relation slot rel, column col = v".
func ColEq(rel, col int, v Value) Cmp { return Cmp{Rel: rel, Col: col, Op: Eq, Val: v} }

// ColRange builds the pair of atoms "lo ≤ column < hi".
func ColRange(rel, col int, lo, hi Value) []pred.Atom {
	return []pred.Atom{
		Cmp{Rel: rel, Col: col, Op: Ge, Val: lo},
		Cmp{Rel: rel, Col: col, Op: Lt, Val: hi},
	}
}

// KeyRange builds a closed query range [lo, hi] for QueryView.
func KeyRange(lo, hi Value) *Range { return pred.NewRange(lo, hi, true, true) }

// KeyPoint builds the query range containing exactly v.
func KeyPoint(v Value) *Range { return pred.PointRange(v) }

// DefaultParams returns the paper's §3.1 default cost-model
// parameters.
func DefaultParams() Params { return costmodel.Default() }

// Load reconstructs a database previously serialized with
// Database.Save. The restored engine answers every query identically
// and continues from the saved tuple-id clock; its cost meter starts
// at zero.
func Load(r io.Reader) (*Database, error) { return core.Load(r) }
