package viewmat_test

import (
	"bytes"
	"testing"

	"viewmat"
)

// TestFacadeQuickstart exercises the doc-comment example end to end.
func TestFacadeQuickstart(t *testing.T) {
	db := viewmat.Open(viewmat.Options{})
	if _, err := db.CreateRelationBTree("emp", viewmat.NewSchema(
		viewmat.Col("dept", viewmat.Int),
		viewmat.Col("name", viewmat.String),
	), 0); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateView(viewmat.Def{
		Name:      "eng",
		Kind:      viewmat.SelectProject,
		Relations: []string{"emp"},
		Pred:      viewmat.Where(viewmat.ColEq(0, 0, viewmat.I(7))),
		Project:   [][]int{{0, 1}},
	}, viewmat.Deferred); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if _, err := tx.Insert("emp", viewmat.I(7), viewmat.S("ada")); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert("emp", viewmat.I(3), viewmat.S("bob")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	rows, err := db.QueryView("eng", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Vals[1].Str() != "ada" {
		t.Errorf("rows = %v", rows)
	}
}

func TestFacadeHelpers(t *testing.T) {
	rg := viewmat.KeyRange(viewmat.I(5), viewmat.I(10))
	if !rg.Contains(viewmat.I(5)) || !rg.Contains(viewmat.I(10)) || rg.Contains(viewmat.I(11)) {
		t.Error("KeyRange bounds wrong")
	}
	pt := viewmat.KeyPoint(viewmat.I(3))
	if !pt.Contains(viewmat.I(3)) || pt.Contains(viewmat.I(4)) {
		t.Error("KeyPoint wrong")
	}
	atoms := viewmat.ColRange(0, 2, viewmat.I(1), viewmat.I(9))
	if len(atoms) != 2 {
		t.Error("ColRange should emit two atoms")
	}
	p := viewmat.DefaultParams()
	if p.N != 100000 {
		t.Errorf("DefaultParams N = %v", p.N)
	}
}

func TestAdvise(t *testing.T) {
	p := viewmat.DefaultParams().WithP(0.7)
	rec, err := viewmat.Advise(viewmat.SelectProject, p)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Best != "clustered" {
		t.Errorf("at P=0.7 best = %q, want clustered", rec.Best)
	}
	if viewmat.StrategyFor(rec) != viewmat.QueryModification {
		t.Error("clustered should map to QueryModification")
	}
	if len(rec.Costs) != 5 || rec.Rationale == "" {
		t.Errorf("recommendation incomplete: %+v", rec)
	}

	low := viewmat.DefaultParams().WithP(0.05)
	rec, err = viewmat.Advise(viewmat.SelectProject, low)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Best != "immediate" {
		t.Errorf("at P=0.05 best = %q, want immediate", rec.Best)
	}
	if viewmat.StrategyFor(rec) != viewmat.Immediate {
		t.Error("immediate verdict should map to Immediate")
	}

	aggRec, err := viewmat.Advise(viewmat.Aggregate, viewmat.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if aggRec.Best != "immediate" && aggRec.Best != "deferred" {
		t.Errorf("aggregates should favor maintenance: %q", aggRec.Best)
	}

	bad := viewmat.DefaultParams()
	bad.F = -1
	if _, err := viewmat.Advise(viewmat.SelectProject, bad); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestAdviseExtended(t *testing.T) {
	// Long-period snapshots undercut everything when staleness is
	// acceptable.
	rec, err := viewmat.AdviseExtended(viewmat.DefaultParams().WithP(0.5), 100)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Best != "snapshot" {
		t.Errorf("long-period snapshot not recommended: %q", rec.Best)
	}
	if viewmat.StrategyFor(rec) != viewmat.Snapshot {
		t.Error("snapshot verdict should map to Snapshot")
	}
	if len(rec.Costs) != 7 {
		t.Errorf("extended costs = %d entries, want 7", len(rec.Costs))
	}
	bad := viewmat.DefaultParams()
	bad.N = 0
	if _, err := viewmat.AdviseExtended(bad, 10); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestFacadeSnapshotStrategy(t *testing.T) {
	db := viewmat.Open(viewmat.Options{})
	if _, err := db.CreateRelationBTree("t", viewmat.NewSchema(
		viewmat.Col("k", viewmat.Int), viewmat.Col("v", viewmat.Int),
	), 0); err != nil {
		t.Fatal(err)
	}
	def := viewmat.Def{
		Name:      "snap",
		Kind:      viewmat.SelectProject,
		Relations: []string{"t"},
		Pred:      viewmat.Where(),
		Project:   [][]int{{0, 1}},
	}
	if err := db.CreateView(def, viewmat.Snapshot); err != nil {
		t.Fatal(err)
	}
	if err := db.SetSnapshotInterval("snap", 100); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if _, err := tx.Insert("t", viewmat.I(1), viewmat.I(2)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	rows, err := db.QueryView("snap", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("stale snapshot rows = %d, want 0", len(rows))
	}
	if err := db.RefreshSnapshot("snap"); err != nil {
		t.Fatal(err)
	}
	rows, _ = db.QueryView("snap", nil)
	if len(rows) != 1 {
		t.Errorf("refreshed snapshot rows = %d, want 1", len(rows))
	}
}

func TestFacadeExplain(t *testing.T) {
	db := viewmat.Open(viewmat.Options{})
	if _, err := db.CreateRelationBTree("t", viewmat.NewSchema(
		viewmat.Col("k", viewmat.Int), viewmat.Col("v", viewmat.Int),
	), 0); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	for i := int64(0); i < 50; i++ {
		if _, err := tx.Insert("t", viewmat.I(i), viewmat.I(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	def := viewmat.Def{
		Name:      "small",
		Kind:      viewmat.SelectProject,
		Relations: []string{"t"},
		Pred:      viewmat.Where(viewmat.ColRange(0, 0, viewmat.I(0), viewmat.I(10))...),
		Project:   [][]int{{0, 1}},
	}
	if err := db.CreateView(def, viewmat.Immediate); err != nil {
		t.Fatal(err)
	}
	ex, err := db.Explain("small", viewmat.WorkloadHints{UpdateTxns: 10, Queries: 50})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Params.N != 50 || ex.Params.F != 0.2 {
		t.Errorf("profiled N=%v f=%v", ex.Params.N, ex.Params.F)
	}
	if ex.Cheapest == "" || len(ex.Costs) == 0 {
		t.Errorf("explanation incomplete: %+v", ex)
	}
}

func TestFacadeSaveLoad(t *testing.T) {
	db := viewmat.Open(viewmat.Options{})
	if _, err := db.CreateRelationBTree("t", viewmat.NewSchema(
		viewmat.Col("k", viewmat.Int), viewmat.Col("v", viewmat.String),
	), 0); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateView(viewmat.Def{
		Name:      "all",
		Kind:      viewmat.SelectProject,
		Relations: []string{"t"},
		Pred:      viewmat.Where(),
		Project:   [][]int{{0, 1}},
	}, viewmat.Deferred); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if _, err := tx.Insert("t", viewmat.I(1), viewmat.S("persisted")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := viewmat.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := restored.QueryView("all", nil)
	if err != nil || len(rows) != 1 || rows[0].Vals[1].Str() != "persisted" {
		t.Errorf("restored rows = %v, err %v", rows, err)
	}
}
