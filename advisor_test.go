package viewmat_test

import (
	"errors"
	"testing"

	"viewmat"
)

func TestAdviseUnknownViewKind(t *testing.T) {
	cases := []struct {
		name    string
		kind    viewmat.ViewKind
		wantErr bool
	}{
		{"select-project", viewmat.SelectProject, false},
		{"join", viewmat.Join, false},
		{"aggregate", viewmat.Aggregate, false},
		{"grouped-aggregate", viewmat.GroupedAggregate, true}, // no analytic model for the extension
		{"out-of-range", viewmat.ViewKind(99), true},
		{"negative", viewmat.ViewKind(-1), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec, err := viewmat.Advise(tc.kind, viewmat.DefaultParams())
			if tc.wantErr {
				if !errors.Is(err, viewmat.ErrUnknownViewKind) {
					t.Fatalf("Advise(%v) error = %v, want ErrUnknownViewKind", tc.kind, err)
				}
				return
			}
			if err != nil {
				t.Fatalf("Advise(%v): %v", tc.kind, err)
			}
			if rec.Best == "" || len(rec.Costs) == 0 {
				t.Fatalf("Advise(%v) returned empty recommendation: %+v", tc.kind, rec)
			}
		})
	}

	// Invalid params must surface the validation error, not the
	// unknown-kind one.
	bad := viewmat.DefaultParams()
	bad.N = 0
	if _, err := viewmat.Advise(viewmat.SelectProject, bad); err == nil || errors.Is(err, viewmat.ErrUnknownViewKind) {
		t.Fatalf("Advise with invalid params: err = %v, want validation error", err)
	}
}
