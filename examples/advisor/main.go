// Sweep the workload space with the advisor: for each view model,
// print the recommended strategy as the update probability P grows —
// the paper's conclusion ("highly application-dependent") rendered as
// a table.
package main

import (
	"fmt"

	"viewmat"
)

func main() {
	ps := []float64{0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9}

	models := []struct {
		name string
		kind viewmat.ViewKind
	}{
		{"select-project (Model 1)", viewmat.SelectProject},
		{"two-way join   (Model 2)", viewmat.Join},
		{"aggregate      (Model 3)", viewmat.Aggregate},
	}

	fmt.Printf("%-26s", "P:")
	for _, pv := range ps {
		fmt.Printf("%-12.2f", pv)
	}
	fmt.Println()
	for _, m := range models {
		fmt.Printf("%-26s", m.name)
		for _, pv := range ps {
			rec, err := viewmat.Advise(m.kind, viewmat.DefaultParams().WithP(pv))
			if err != nil {
				panic(err)
			}
			fmt.Printf("%-12s", rec.Best)
		}
		fmt.Println()
	}

	fmt.Println("\nsmall queries against a large join view (the EMP-DEPT case):")
	p := viewmat.DefaultParams()
	p.F, p.L, p.FV = 1, 1, 1/p.N
	fmt.Printf("%-26s", "empdept profile")
	for _, pv := range ps {
		rec, err := viewmat.Advise(viewmat.Join, p.WithP(pv))
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-12s", rec.Best)
	}
	fmt.Println()
}
