// Quickstart: define a relation, materialize a view three ways, and
// watch what each strategy pays — the paper's comparison in twenty
// lines of API.
package main

import (
	"fmt"

	"viewmat"
)

func main() {
	for _, strategy := range []viewmat.Strategy{
		viewmat.QueryModification, viewmat.Immediate, viewmat.Deferred,
	} {
		run(strategy)
	}
}

func run(strategy viewmat.Strategy) {
	db := viewmat.Open(viewmat.Options{})

	// employees(dept, name, salary), clustered on dept.
	schema := viewmat.NewSchema(
		viewmat.Col("dept", viewmat.Int),
		viewmat.Col("name", viewmat.String),
		viewmat.Col("salary", viewmat.Int),
	)
	if _, err := db.CreateRelationBTree("employees", schema, 0); err != nil {
		panic(err)
	}

	// Seed 1000 employees across 20 departments.
	tx := db.Begin()
	ids := map[int64]uint64{}
	for i := int64(0); i < 1000; i++ {
		id, err := tx.Insert("employees",
			viewmat.I(i%20), viewmat.S(fmt.Sprintf("emp-%d", i)), viewmat.I(50000+i))
		if err != nil {
			panic(err)
		}
		ids[i] = id
	}
	tx.MustCommit()

	// engineering = departments 0-4, keeping dept and name.
	def := viewmat.Def{
		Name:      "engineering",
		Kind:      viewmat.SelectProject,
		Relations: []string{"employees"},
		Pred:      viewmat.Where(viewmat.ColRange(0, 0, viewmat.I(0), viewmat.I(5))...),
		Project:   [][]int{{0, 1}},
	}
	if err := db.CreateView(def, strategy); err != nil {
		panic(err)
	}
	db.ResetStats()

	// A day's traffic: 20 transactions of 5 raises each, 20 queries.
	for round := 0; round < 20; round++ {
		tx := db.Begin()
		for j := 0; j < 5; j++ {
			emp := int64((round*37 + j*211) % 1000)
			newID, err := tx.Update("employees", viewmat.I(emp%20), ids[emp],
				viewmat.I(emp%20), viewmat.S(fmt.Sprintf("emp-%d*", emp)), viewmat.I(60000+emp))
			if err != nil {
				panic(err)
			}
			ids[emp] = newID
		}
		tx.MustCommit()

		rows, err := db.QueryView("engineering", viewmat.KeyRange(viewmat.I(0), viewmat.I(2)))
		if err != nil {
			panic(err)
		}
		if len(rows) == 0 {
			panic("view lost its rows")
		}
	}

	p := viewmat.DefaultParams()
	total := db.Meter().Snapshot()
	fmt.Printf("%-20s %6.0f ms/query  (%4d page reads, %4d writes, %5d screens)\n",
		strategy, total.Cost(p.C1, p.C2, p.C3)/float64(db.Queries),
		total.Reads, total.Writes, total.Screens)
}
