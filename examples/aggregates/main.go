// A live sales dashboard over materialized aggregates — the paper's
// Model 3, and its §4 observation that materialization shines where "a
// complete copy of the answer to a query is always needed": the
// dashboard reads SUM/COUNT/AVG/MIN/MAX after every batch of orders,
// paying one page read each, while recomputation would rescan the
// order table every time.
package main

import (
	"fmt"

	"viewmat"
)

func main() {
	db := viewmat.Open(viewmat.Options{})

	// orders(region, amount, item), clustered on region.
	orders := viewmat.NewSchema(
		viewmat.Col("region", viewmat.Int),
		viewmat.Col("amount", viewmat.Int),
		viewmat.Col("item", viewmat.String),
	)
	if _, err := db.CreateRelationBTree("orders", orders, 0); err != nil {
		panic(err)
	}

	// Dashboard tiles: aggregates over the "west coast" regions (0-2),
	// maintained with deferred refresh so order entry never waits.
	west := viewmat.Where(viewmat.ColRange(0, 0, viewmat.I(0), viewmat.I(3))...)
	tiles := []struct {
		name string
		kind viewmat.AggKind
	}{
		{"west_total", viewmat.Sum},
		{"west_orders", viewmat.Count},
		{"west_avg", viewmat.Avg},
		{"west_min", viewmat.Min},
		{"west_max", viewmat.Max},
	}
	for _, tile := range tiles {
		def := viewmat.Def{
			Name:      tile.name,
			Kind:      viewmat.Aggregate,
			Relations: []string{"orders"},
			Pred:      west,
			AggKind:   tile.kind,
			AggCol:    1,
		}
		if err := db.CreateView(def, viewmat.Deferred); err != nil {
			panic(err)
		}
	}
	// Plus a per-region breakdown: SUM(amount) GROUP BY region, over
	// every region (the grouped-aggregate extension).
	if err := db.CreateView(viewmat.Def{
		Name:      "by_region",
		Kind:      viewmat.GroupedAggregate,
		Relations: []string{"orders"},
		Pred:      viewmat.Where(),
		AggKind:   viewmat.Sum,
		AggCol:    1,
		GroupBy:   0,
	}, viewmat.Deferred); err != nil {
		panic(err)
	}

	// A trading day: batches of orders arrive, the dashboard refreshes
	// between batches.
	var ids []uint64
	var keys []int64
	seq := int64(0)
	for hour := 0; hour < 8; hour++ {
		tx := db.Begin()
		for i := 0; i < 50; i++ {
			region := seq % 6
			amount := 100 + (seq*37)%900
			id, err := tx.Insert("orders", viewmat.I(region), viewmat.I(amount), viewmat.S(fmt.Sprintf("sku-%d", seq%40)))
			if err != nil {
				panic(err)
			}
			ids = append(ids, id)
			keys = append(keys, region)
			seq++
		}
		// A cancellation: drop an early west-coast order.
		if hour == 5 {
			for i, k := range keys {
				if k == 0 {
					if err := tx.Delete("orders", viewmat.I(k), ids[i]); err != nil {
						panic(err)
					}
					keys[i] = -1
					break
				}
			}
		}
		tx.MustCommit()

		fmt.Printf("hour %d dashboard:\n", hour+9)
		for _, tile := range tiles {
			v, ok, err := db.QueryAggregate(tile.name)
			if err != nil {
				panic(err)
			}
			if !ok {
				fmt.Printf("  %-12s (no data)\n", tile.name)
				continue
			}
			fmt.Printf("  %-12s %10.1f\n", tile.name, v)
		}
	}

	// End-of-day regional breakdown from the grouped view.
	fmt.Println("\nsales by region:")
	groups, err := db.QueryGroups("by_region", nil)
	if err != nil {
		panic(err)
	}
	for _, g := range groups {
		fmt.Printf("  region %d: %10.0f over %d orders\n", g.Group.Int(), g.Value, g.Count)
	}

	// What did keeping the tiles hot cost, and what would recomputing
	// have cost? (The advisor answers from the model; the meter from
	// the run.)
	p := viewmat.DefaultParams()
	p.L = 50
	rec, err := viewmat.Advise(viewmat.Aggregate, p.WithP(0.5))
	if err != nil {
		panic(err)
	}
	total := db.Meter().Snapshot()
	fmt.Printf("\nmeter: %d page reads, %d writes over the day\n", total.Reads, total.Writes)
	fmt.Printf("advisor on this profile: %s — %s\n", rec.Best, rec.Rationale)
}
