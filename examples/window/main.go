// The paper's closing speculation (§4): view materialization's best
// application may be a "window on a database" — a query result
// displayed and kept current in real time. This program builds one: a
// monitoring window over high-priority tickets, maintained deferred,
// with an idle-time refresh (RefreshDeferredNow) so that reading the
// window costs a plain scan of a small, already-current copy.
package main

import (
	"fmt"
	"strings"

	"viewmat"
)

func main() {
	db := viewmat.Open(viewmat.Options{})

	// tickets(priority, id, title), clustered on priority.
	tickets := viewmat.NewSchema(
		viewmat.Col("priority", viewmat.Int),
		viewmat.Col("id", viewmat.Int),
		viewmat.Col("title", viewmat.String),
	)
	if _, err := db.CreateRelationBTree("tickets", tickets, 0); err != nil {
		panic(err)
	}

	// The window: priority ≤ 1 tickets (0 = page, 1 = urgent).
	window := viewmat.Def{
		Name:      "oncall_window",
		Kind:      viewmat.SelectProject,
		Relations: []string{"tickets"},
		Pred:      viewmat.Where(viewmat.Cmp{Rel: 0, Col: 0, Op: viewmat.Le, Val: viewmat.I(1)}),
		Project:   [][]int{{0, 1, 2}},
	}
	if err := db.CreateView(window, viewmat.Deferred); err != nil {
		panic(err)
	}

	ids := map[int64]uint64{}
	nextTicket := int64(100)
	file := func(priority int64, title string) {
		tx := db.Begin()
		id, err := tx.Insert("tickets", viewmat.I(priority), viewmat.I(nextTicket), viewmat.S(title))
		if err != nil {
			panic(err)
		}
		ids[nextTicket] = id
		nextTicket++
		tx.MustCommit()
	}
	resolve := func(ticket int64, priority int64) {
		tx := db.Begin()
		if err := tx.Delete("tickets", viewmat.I(priority), ids[ticket]); err != nil {
			panic(err)
		}
		tx.MustCommit()
	}

	render := func(moment string) {
		rows, err := db.QueryView("oncall_window", nil)
		if err != nil {
			panic(err)
		}
		fmt.Printf("┌─ on-call window — %s\n", moment)
		if len(rows) == 0 {
			fmt.Println("│  (all quiet)")
		}
		for _, r := range rows {
			bar := strings.Repeat("!", int(2-r.Vals[0].Int()))
			fmt.Printf("│ %-2s #%d %s\n", bar, r.Vals[1].Int(), r.Vals[2].Str())
		}
		fmt.Println("└─")
	}

	render("09:00")

	file(3, "typo on the pricing page") // below the window's threshold
	file(1, "checkout latency p99 > 2s")
	file(0, "payments DOWN")
	render("09:10")

	resolve(101, 1) // latency resolved
	file(2, "dashboard chart misaligned")
	render("09:20")

	// Quiet period: refresh during idle time, so the next window read
	// finds the copy current and pays only the scan.
	if err := db.RefreshDeferredNow("oncall_window"); err != nil {
		panic(err)
	}
	db.ResetStats()
	render("09:30 (after idle-time refresh)")
	bd := db.Breakdown()
	fmt.Printf("\nthe 09:30 read did %d page reads and 0 refresh work (AD reads: %d, fold IOs: %d)\n",
		bd["query"].Reads, bd["ad-read"].Reads, bd["fold"].IOs())

	resolve(102, 0) // payments back
	render("09:40")
}
