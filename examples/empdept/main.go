// The paper's §3.5 EMP-DEPT case study: a large join view
// (EMP ⋈ DEPT on department number) queried one employee at a time.
// The analysis predicts query modification wins for essentially any
// update rate — this program asks the advisor, then measures the
// engine both ways to confirm the prediction operationally.
package main

import (
	"fmt"

	"viewmat"
)

const (
	nEmployees   = 4000
	nDepartments = 400
)

func main() {
	// Ask the cost model first, at the paper's EMP-DEPT parameters.
	params := viewmat.DefaultParams()
	params.F = 1               // the view keeps every employee
	params.L = 1               // updates touch one employee
	params.FV = 1 / params.N   // queries fetch a single tuple
	params = params.WithP(0.5) // as many updates as queries
	rec, err := viewmat.Advise(viewmat.Join, params)
	if err != nil {
		panic(err)
	}
	fmt.Printf("advisor: %s\n  %s\n\n", rec.Best, rec.Rationale)

	// Now measure. Same scenario, scaled to run in a blink.
	fmt.Printf("%-20s %14s\n", "strategy", "ms per query")
	for _, strategy := range []viewmat.Strategy{viewmat.QueryModification, viewmat.Immediate, viewmat.Deferred} {
		cost := measure(strategy)
		marker := ""
		if rec.Best == "loopjoin" && strategy == viewmat.QueryModification {
			marker = "  <- advisor's pick"
		}
		fmt.Printf("%-20s %14.1f%s\n", strategy, cost, marker)
	}
}

func measure(strategy viewmat.Strategy) float64 {
	db := viewmat.Open(viewmat.Options{})

	emp := viewmat.NewSchema(
		viewmat.Col("eno", viewmat.Int),
		viewmat.Col("dno", viewmat.Int),
		viewmat.Col("name", viewmat.String),
	)
	dept := viewmat.NewSchema(
		viewmat.Col("dno", viewmat.Int),
		viewmat.Col("dname", viewmat.String),
	)
	if _, err := db.CreateRelationBTree("emp", emp, 0); err != nil {
		panic(err)
	}
	if _, err := db.CreateRelationHash("dept", dept, 0, 32); err != nil {
		panic(err)
	}

	tx := db.Begin()
	for d := int64(0); d < nDepartments; d++ {
		if _, err := tx.Insert("dept", viewmat.I(d), viewmat.S(fmt.Sprintf("dept-%d", d))); err != nil {
			panic(err)
		}
	}
	tx.MustCommit()
	ids := make([]uint64, nEmployees)
	tx = db.Begin()
	for e := int64(0); e < nEmployees; e++ {
		id, err := tx.Insert("emp", viewmat.I(e), viewmat.I(e%nDepartments), viewmat.S(fmt.Sprintf("e%d", e)))
		if err != nil {
			panic(err)
		}
		ids[e] = id
		if e%1000 == 999 {
			tx.MustCommit()
			tx = db.Begin()
		}
	}
	tx.MustCommit()

	// EMP-DEPT = emp ⋈ dept on dno; no restriction (f = 1).
	def := viewmat.Def{
		Name:      "empdept",
		Kind:      viewmat.Join,
		Relations: []string{"emp", "dept"},
		Pred:      viewmat.Where(viewmat.JoinEq{LRel: 0, LCol: 1, RRel: 1, RCol: 0}),
		Project:   [][]int{{0, 2}, {1}},
	}
	if err := db.CreateView(def, strategy); err != nil {
		panic(err)
	}
	db.ResetStats()

	// Interleave single-employee updates with single-tuple queries.
	const rounds = 50
	for i := 0; i < rounds; i++ {
		e := int64((i * 997) % nEmployees)
		tx := db.Begin()
		newID, err := tx.Update("emp", viewmat.I(e), ids[e],
			viewmat.I(e), viewmat.I((e+1)%nDepartments), viewmat.S(fmt.Sprintf("e%d'", e)))
		if err != nil {
			panic(err)
		}
		ids[e] = newID
		tx.MustCommit()

		q := int64((i * 31) % nEmployees)
		if _, err := db.QueryView("empdept", viewmat.KeyPoint(viewmat.I(q))); err != nil {
			panic(err)
		}
	}

	p := viewmat.DefaultParams()
	return db.Meter().Snapshot().Cost(p.C1, p.C2, p.C3) / float64(db.Queries)
}
