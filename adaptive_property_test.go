package viewmat_test

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"viewmat"
)

// The phase-shift property test — the adaptive advisor's headline
// correctness claim, over randomized workloads on all three of the
// paper's view models:
//
//  1. Safety: the adaptive engine's query answers stay identical to a
//     recompute oracle (a static query-modification engine replaying
//     the same script) at every step, across every strategy flip the
//     advisor performs. Failures are shrunk to a minimal script.
//  2. Convergence: after each phase settles, the strategy the advisor
//     chose matches Advise fed the *true* generating parameters of
//     that phase — or, when the analytic tables score two strategies
//     within the advisor's hysteresis band of each other, a strategy
//     Advise prices within that band of its own optimum (an advisor
//     with flip hysteresis ε legitimately rests anywhere ε-close to
//     the analytic minimum; demanding exact argmin equality on a
//     near-tie would test tie-breaking, not convergence).
//
// The candidate set is the paper's three strategies (ExtendedStrategies
// off), all always-consistent, which is what makes property 1 exact.

// aStep is one step of a phased workload script.
type aStep struct {
	op  string // "ins", "del", "upd", "query", "tick", "refresh"
	key int64
	val int64
	idx int
}

func formatAScript(steps []aStep) string {
	var b strings.Builder
	for i, s := range steps {
		fmt.Fprintf(&b, "  %2d: %s key=%d val=%d idx=%d\n", i, s.op, s.key, s.val, s.idx)
	}
	return b.String()
}

// phaseMix is one phase's generating workload shape.
type phaseMix struct {
	rounds     int
	mutEvery   int // one mutation tx every mutEvery rounds
	tuplesPerM int // mutation ops per tx
	queries    int // queries per round
}

// queryHeavy/updateHeavy are the two phases: the shapes sit deep in
// the analytic regions where materialization (low P) respectively
// query modification (high P) wins, so the oracle verdict is stable
// across seeds.
var (
	queryHeavy  = phaseMix{rounds: 30, mutEvery: 5, tuplesPerM: 2, queries: 6}
	updateHeavy = phaseMix{rounds: 40, mutEvery: -4, tuplesPerM: 3, queries: 0} // -4: four mutation txs per round, query every 2nd
)

// genPhase appends one phase's steps: mutations and queries per the
// mix, an advisor tick after every round.
func genPhase(rng *rand.Rand, mix phaseMix, keySpace int64, steps []aStep) []aStep {
	mut := func() aStep {
		switch rng.Intn(3) {
		case 0:
			return aStep{op: "ins", key: rng.Int63n(keySpace), val: rng.Int63n(50)}
		case 1:
			return aStep{op: "del", idx: rng.Intn(1 << 20)}
		default:
			return aStep{op: "upd", idx: rng.Intn(1 << 20), key: rng.Int63n(keySpace), val: rng.Int63n(50)}
		}
	}
	for r := 0; r < mix.rounds; r++ {
		if mix.mutEvery > 0 && r%mix.mutEvery == 0 {
			for j := 0; j < mix.tuplesPerM; j++ {
				steps = append(steps, mut())
			}
			steps = append(steps, aStep{op: "commit"})
		}
		if mix.mutEvery < 0 {
			for tx := 0; tx < -mix.mutEvery; tx++ {
				for j := 0; j < mix.tuplesPerM; j++ {
					steps = append(steps, mut())
				}
				steps = append(steps, aStep{op: "commit"})
			}
		}
		nq := mix.queries
		if nq == 0 && r%2 == 0 {
			nq = 1
		}
		for j := 0; j < nq; j++ {
			steps = append(steps, aStep{op: "query"})
		}
		if r%7 == 3 {
			steps = append(steps, aStep{op: "refresh"})
		}
		steps = append(steps, aStep{op: "tick"})
	}
	return steps
}

// aLive tracks one engine's live tuples of the mutated relation.
type aLive struct {
	keys []int64
	ids  []uint64
}

// aFixture abstracts one view model for the harness.
type aFixture struct {
	kind     viewmat.ViewKind
	rel      string // the relation the script mutates
	keySpace int64
	inRange  func(key int64) bool // view predicate over the mutated relation's keys
	build    func(st viewmat.Strategy) (*viewmat.Database, *aLive, error)
	vals     func(key, val int64) []viewmat.Value
	// query returns a canonical string form of the view's full answer.
	query func(db *viewmat.Database) (string, error)
}

func rowsCanon(rows []viewmat.ResultRow) string {
	out := make([]string, len(rows))
	for i, r := range rows {
		var b strings.Builder
		for _, v := range r.Vals {
			fmt.Fprintf(&b, "%v|", v)
		}
		out[i] = b.String()
	}
	sort.Strings(out)
	return strings.Join(out, "\n")
}

func viewQueryCanon(name string) func(db *viewmat.Database) (string, error) {
	return func(db *viewmat.Database) (string, error) {
		rows, err := db.QueryView(name, nil)
		if err != nil {
			return "", err
		}
		return rowsCanon(rows), nil
	}
}

func adaptiveFixture(model int) aFixture {
	spSchema := viewmat.NewSchema(
		viewmat.Col("k", viewmat.Int), viewmat.Col("a", viewmat.Int), viewmat.Col("s", viewmat.String))
	switch model {
	case 2:
		return aFixture{
			kind: viewmat.Join, rel: "r1", keySpace: 150,
			inRange: func(key int64) bool { return key < 100 },
			build: func(st viewmat.Strategy) (*viewmat.Database, *aLive, error) {
				db := viewmat.Open(viewmat.Options{PageSize: 512, PoolFrames: 64, MaxRefreshWorkers: 4})
				s1 := viewmat.NewSchema(
					viewmat.Col("k", viewmat.Int), viewmat.Col("jv", viewmat.Int), viewmat.Col("p", viewmat.String))
				s2 := viewmat.NewSchema(viewmat.Col("jv", viewmat.Int), viewmat.Col("info", viewmat.String))
				if _, err := db.CreateRelationBTree("r1", s1, 0); err != nil {
					return nil, nil, err
				}
				if _, err := db.CreateRelationHash("r2", s2, 0, 8); err != nil {
					return nil, nil, err
				}
				live := &aLive{}
				tx := db.Begin()
				for j := int64(0); j < 10; j++ {
					if _, err := tx.Insert("r2", viewmat.I(j), viewmat.S("info")); err != nil {
						return nil, nil, err
					}
				}
				for i := int64(0); i < 150; i++ {
					id, err := tx.Insert("r1", viewmat.I(i), viewmat.I(i%10), viewmat.S("p"))
					if err != nil {
						return nil, nil, err
					}
					live.keys = append(live.keys, i)
					live.ids = append(live.ids, id)
				}
				if err := tx.Commit(); err != nil {
					return nil, nil, err
				}
				def := viewmat.Def{
					Name: "v", Kind: viewmat.Join, Relations: []string{"r1", "r2"},
					Pred: viewmat.Where(
						viewmat.Cmp{Rel: 0, Col: 0, Op: viewmat.Lt, Val: viewmat.I(100)},
						viewmat.JoinEq{LRel: 0, LCol: 1, RRel: 1, RCol: 0},
					),
					Project: [][]int{{0, 2}, {1}}, ViewKeyCol: 0,
				}
				return db, live, db.CreateView(def, st)
			},
			vals: func(key, val int64) []viewmat.Value {
				return []viewmat.Value{viewmat.I(key), viewmat.I(val % 10), viewmat.S("p")}
			},
			query: viewQueryCanon("v"),
		}
	case 3:
		return aFixture{
			kind: viewmat.Aggregate, rel: "r", keySpace: 150,
			inRange: func(key int64) bool { return key >= 10 && key < 60 },
			build: func(st viewmat.Strategy) (*viewmat.Database, *aLive, error) {
				db := viewmat.Open(viewmat.Options{PageSize: 512, PoolFrames: 64, MaxRefreshWorkers: 4})
				if _, err := db.CreateRelationBTree("r", spSchema, 0); err != nil {
					return nil, nil, err
				}
				live := &aLive{}
				tx := db.Begin()
				for i := int64(0); i < 150; i++ {
					id, err := tx.Insert("r", viewmat.I(i), viewmat.I(i*2), viewmat.S("s"))
					if err != nil {
						return nil, nil, err
					}
					live.keys = append(live.keys, i)
					live.ids = append(live.ids, id)
				}
				if err := tx.Commit(); err != nil {
					return nil, nil, err
				}
				def := viewmat.Def{
					Name: "v", Kind: viewmat.Aggregate, Relations: []string{"r"},
					Pred:    viewmat.Where(viewmat.ColRange(0, 0, viewmat.I(10), viewmat.I(60))...),
					AggKind: viewmat.Sum, AggCol: 1,
				}
				return db, live, db.CreateView(def, st)
			},
			vals: func(key, val int64) []viewmat.Value {
				return []viewmat.Value{viewmat.I(key), viewmat.I(val), viewmat.S("s")}
			},
			query: func(db *viewmat.Database) (string, error) {
				v, ok, err := db.QueryAggregate("v")
				if err != nil {
					return "", err
				}
				return fmt.Sprintf("%v|%.9g", ok, v), nil
			},
		}
	default:
		return aFixture{
			kind: viewmat.SelectProject, rel: "r", keySpace: 150,
			inRange: func(key int64) bool { return key >= 10 && key < 60 },
			build: func(st viewmat.Strategy) (*viewmat.Database, *aLive, error) {
				db := viewmat.Open(viewmat.Options{PageSize: 512, PoolFrames: 64, MaxRefreshWorkers: 4})
				if _, err := db.CreateRelationBTree("r", spSchema, 0); err != nil {
					return nil, nil, err
				}
				live := &aLive{}
				tx := db.Begin()
				for i := int64(0); i < 150; i++ {
					id, err := tx.Insert("r", viewmat.I(i), viewmat.I(i*2), viewmat.S("s"))
					if err != nil {
						return nil, nil, err
					}
					live.keys = append(live.keys, i)
					live.ids = append(live.ids, id)
				}
				if err := tx.Commit(); err != nil {
					return nil, nil, err
				}
				def := viewmat.Def{
					Name: "v", Kind: viewmat.SelectProject, Relations: []string{"r"},
					Pred:    viewmat.Where(viewmat.ColRange(0, 0, viewmat.I(10), viewmat.I(60))...),
					Project: [][]int{{0, 2}}, ViewKeyCol: 0,
				}
				return db, live, db.CreateView(def, st)
			},
			vals: func(key, val int64) []viewmat.Value {
				return []viewmat.Value{viewmat.I(key), viewmat.I(val), viewmat.S("s")}
			},
			query: viewQueryCanon("v"),
		}
	}
}

// trueStats accumulates a phase's generating parameters with the
// engine's own accounting: an update writes two tuples (delete of the
// old, insert of the new), each screened against the view predicate.
type trueStats struct {
	txs, queries   float64
	tuples, inPred float64
}

func (s *trueStats) params(base viewmat.Params) viewmat.Params {
	p := base // structural fields (N, S, B, n, FR2, unit costs) from the engine
	p.K = s.txs
	p.Q = math.Max(s.queries, 1e-3)
	if s.txs > 0 {
		p.L = math.Max(s.tuples/s.txs, 1)
	}
	if s.tuples > 0 {
		p.F = math.Min(math.Max(s.inPred/s.tuples, 1e-6), 1)
	}
	p.FV = 1 // scripts read the full view
	return p
}

// runAdaptiveScript replays steps against an adaptive engine and the
// recompute oracle in lockstep, comparing every query answer. stats,
// when non-nil, receives the script's true generating parameters.
// Returns the first divergence or error.
func runAdaptiveScript(model int, steps []aStep, stats *trueStats) (*viewmat.Database, error) {
	fx := adaptiveFixture(model)
	adb, alive, err := fx.build(viewmat.QueryModification)
	if err != nil {
		return nil, fmt.Errorf("adaptive setup: %w", err)
	}
	if err := adb.EnableAdaptive(viewmat.AdvisorOptions{
		Hysteresis: 0.05, MinObservations: 8, HalfLife: 24,
	}); err != nil {
		return nil, err
	}
	odb, olive, err := fx.build(viewmat.QueryModification)
	if err != nil {
		return nil, fmt.Errorf("oracle setup: %w", err)
	}

	type engine struct {
		db   *viewmat.Database
		live *aLive
		tx   *viewmat.Tx
	}
	engines := []*engine{{adb, alive, nil}, {odb, olive, nil}}
	for i, s := range steps {
		switch s.op {
		case "ins", "del", "upd", "commit":
			for _, e := range engines {
				if e.tx == nil {
					e.tx = e.db.Begin()
				}
			}
			switch s.op {
			case "ins":
				for _, e := range engines {
					id, err := e.tx.Insert(fx.rel, fx.vals(s.key, s.val)...)
					if err != nil {
						return adb, fmt.Errorf("step %d ins: %w", i, err)
					}
					e.live.keys = append(e.live.keys, s.key)
					e.live.ids = append(e.live.ids, id)
				}
				if stats != nil {
					stats.tuples++
					if fx.inRange(s.key) {
						stats.inPred++
					}
				}
			case "del":
				if len(alive.keys) == 0 {
					continue
				}
				j := s.idx % len(alive.keys)
				for _, e := range engines {
					if err := e.tx.Delete(fx.rel, viewmat.I(e.live.keys[j]), e.live.ids[j]); err != nil {
						return adb, fmt.Errorf("step %d del: %w", i, err)
					}
				}
				if stats != nil {
					stats.tuples++
					if fx.inRange(alive.keys[j]) {
						stats.inPred++
					}
				}
				for _, e := range engines {
					e.live.keys = append(e.live.keys[:j], e.live.keys[j+1:]...)
					e.live.ids = append(e.live.ids[:j], e.live.ids[j+1:]...)
				}
			case "upd":
				if len(alive.keys) == 0 {
					continue
				}
				j := s.idx % len(alive.keys)
				if stats != nil {
					stats.tuples += 2
					if fx.inRange(alive.keys[j]) {
						stats.inPred++
					}
					if fx.inRange(s.key) {
						stats.inPred++
					}
				}
				for _, e := range engines {
					id, err := e.tx.Update(fx.rel, viewmat.I(e.live.keys[j]), e.live.ids[j], fx.vals(s.key, s.val)...)
					if err != nil {
						return adb, fmt.Errorf("step %d upd: %w", i, err)
					}
					e.live.keys[j] = s.key
					e.live.ids[j] = id
				}
			case "commit":
				empty := engines[0].tx == nil
				for _, e := range engines {
					if e.tx != nil {
						if err := e.tx.Commit(); err != nil {
							return adb, fmt.Errorf("step %d commit: %w", i, err)
						}
						e.tx = nil
					}
				}
				if stats != nil && !empty {
					stats.txs++
				}
			}
		case "query":
			got, err := fx.query(adb)
			if err != nil {
				return adb, fmt.Errorf("step %d adaptive query: %w", i, err)
			}
			want, err := fx.query(odb)
			if err != nil {
				return adb, fmt.Errorf("step %d oracle query: %w", i, err)
			}
			if got != want {
				_, st, _ := adb.View("v")
				return adb, fmt.Errorf("step %d: adaptive (strategy %v) diverges from recompute oracle:\n got %q\nwant %q", i, st, got, want)
			}
			if stats != nil {
				stats.queries++
			}
		case "tick":
			if _, err := adb.AdaptTick(); err != nil {
				return adb, fmt.Errorf("step %d tick: %w", i, err)
			}
		case "refresh":
			if err := adb.RefreshAll(); err != nil {
				return adb, fmt.Errorf("step %d refresh: %w", i, err)
			}
		}
	}
	return adb, nil
}

// shrinkAScript greedily removes steps while fails still holds,
// mirroring the core package's script shrinker.
func shrinkAScript(steps []aStep, fails func([]aStep) bool) []aStep {
	out := append([]aStep(nil), steps...)
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(out); i++ {
			cand := append(append([]aStep(nil), out[:i]...), out[i+1:]...)
			if fails(cand) {
				out = cand
				changed = true
			}
		}
	}
	return out
}

// checkConvergence asserts the advisor's resting strategy against the
// analytic oracle fed the phase's true parameters.
func checkConvergence(t *testing.T, label string, db *viewmat.Database, kind viewmat.ViewKind, stats trueStats) {
	t.Helper()
	advStats := db.AdvisorStats()
	if len(advStats) != 1 {
		t.Fatalf("%s: AdvisorStats returned %d views", label, len(advStats))
	}
	st := advStats[0]
	trueP := stats.params(st.Params)
	rec, err := viewmat.Advise(kind, trueP)
	if err != nil {
		t.Fatalf("%s: Advise(true params): %v", label, err)
	}
	oracle := viewmat.StrategyFor(rec)
	_, got, ok := db.View("v")
	if !ok {
		t.Fatalf("%s: view vanished", label)
	}
	t.Logf("%s: resting strategy %v, Advise(true params) %s (flips so far: %d)",
		label, got, rec.Best, st.Flips)
	if got == oracle {
		return
	}
	// Near-tie tolerance: accept a resting strategy the oracle prices
	// within the advisor's hysteresis band (×2 for estimation noise) of
	// its own optimum.
	name := map[viewmat.Strategy]string{
		viewmat.QueryModification: "query-modification",
		viewmat.Immediate:         "immediate",
		viewmat.Deferred:          "deferred",
	}[got]
	best := rec.Costs[rec.Best]
	mine, have := rec.Costs[name]
	if name == "query-modification" {
		// Advise's QM verdicts carry the algorithm name; price the
		// engine's resting point at the cheapest QM plan.
		mine, have = math.Inf(1), false
		for _, alg := range []string{"clustered", "unclustered", "sequential", "loop-join"} {
			if c, ok := rec.Costs[alg]; ok && c < mine {
				mine, have = c, true
			}
		}
	}
	if !have || mine > best*1.10 {
		t.Errorf("%s: converged to %v but Advise(true params) says %s (%.1f vs %.1f ms/query; true params %+v; measured %+v)",
			label, got, rec.Best, mine, best, trueP, st.Params)
	}
}

func testAdaptivePhaseShift(t *testing.T, model int) {
	for seed := int64(0); seed < 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed + 900*int64(model)))
			phaseA := genPhase(rng, queryHeavy, adaptiveFixture(model).keySpace, nil)
			full := genPhase(rng, updateHeavy, adaptiveFixture(model).keySpace, append([]aStep(nil), phaseA...))

			// Property 1: byte-identical to the recompute oracle across
			// the full phased script, shrinking on failure.
			if _, err := runAdaptiveScript(model, full, nil); err != nil {
				min := shrinkAScript(full, func(s []aStep) bool {
					_, e := runAdaptiveScript(model, s, nil)
					return e != nil
				})
				_, minErr := runAdaptiveScript(model, min, nil)
				t.Fatalf("model %d seed %d: %v\nminimal script (%d steps):\n%s", model, seed, minErr, len(min), formatAScript(min))
			}

			// Property 2: convergence per phase. Replay each phase with
			// bookkeeping and check the resting strategy against Advise.
			var statsA trueStats
			db, err := runAdaptiveScript(model, phaseA, &statsA)
			if err != nil {
				t.Fatalf("phase A replay: %v", err)
			}
			checkConvergence(t, fmt.Sprintf("model %d seed %d phase A (query-heavy)", model, seed), db, adaptiveFixture(model).kind, statsA)

			var statsFull trueStats
			db, err = runAdaptiveScript(model, full, &statsFull)
			if err != nil {
				t.Fatalf("full replay: %v", err)
			}
			statsB := trueStats{
				txs:     statsFull.txs - statsA.txs,
				queries: statsFull.queries - statsA.queries,
				tuples:  statsFull.tuples - statsA.tuples,
				inPred:  statsFull.inPred - statsA.inPred,
			}
			checkConvergence(t, fmt.Sprintf("model %d seed %d phase B (update-heavy)", model, seed), db, adaptiveFixture(model).kind, statsB)
		})
	}
}

func TestAdaptivePhaseShiftModel1(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	testAdaptivePhaseShift(t, 1)
}

func TestAdaptivePhaseShiftModel2(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	testAdaptivePhaseShift(t, 2)
}

func TestAdaptivePhaseShiftModel3(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	testAdaptivePhaseShift(t, 3)
}
